"""Tests for the ``tools/bench_trend.py`` snapshot comparison gate."""

import importlib.util
import json
import os

import pytest

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__)
)))


@pytest.fixture(scope="module")
def bench_trend():
    spec = importlib.util.spec_from_file_location(
        "bench_trend", os.path.join(_REPO_ROOT, "tools", "bench_trend.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _snapshot(path, seconds: dict, statuses: dict | None = None):
    statuses = statuses or {}
    payload = {
        "benchmarks": [
            {
                "benchmark": name,
                "status": statuses.get(name, "ok"),
                "total_seconds": value,
            }
            for name, value in seconds.items()
        ]
    }
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


def test_repo_snapshots_exist_and_pass_the_gate(bench_trend):
    """The committed trend (currently BENCH_1 and BENCH_2) must satisfy
    its own regression gate."""
    paths = bench_trend.snapshot_paths()
    assert len(paths) >= 2, "the perf trend needs at least two snapshots"
    assert bench_trend.compare_snapshots(paths[-1], paths[-2]) == 0


def test_regression_past_gate_fails(tmp_path, bench_trend, capsys):
    old = _snapshot(tmp_path / "old.json", {"fig": 1.0, "other": 5.0})
    new = _snapshot(tmp_path / "new.json", {"fig": 1.5, "other": 5.1})
    assert bench_trend.compare_snapshots(new, old) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "fig" in out


def test_small_absolute_growth_is_not_flagged(tmp_path, bench_trend):
    # +50% relative but only 0.015s absolute: below the noise floor.
    old = _snapshot(tmp_path / "old.json", {"micro": 0.03})
    new = _snapshot(tmp_path / "new.json", {"micro": 0.045})
    assert bench_trend.compare_snapshots(new, old) == 0


def test_new_and_missing_benchmarks_do_not_fail(tmp_path, bench_trend, capsys):
    old = _snapshot(tmp_path / "old.json", {"gone": 2.0, "kept": 1.0})
    new = _snapshot(tmp_path / "new.json", {"kept": 1.0, "added": 9.0})
    assert bench_trend.compare_snapshots(new, old) == 0
    out = capsys.readouterr().out
    assert "new (no baseline)" in out
    assert "missing from newest" in out


def test_failed_benchmarks_are_excluded(tmp_path, bench_trend):
    old = _snapshot(tmp_path / "old.json", {"fig": 1.0})
    new = _snapshot(
        tmp_path / "new.json", {"fig": 9.0}, statuses={"fig": "failed"}
    )
    # A failed run has no trustworthy wall-clock; it is reported as
    # missing rather than compared.
    assert bench_trend.compare_snapshots(new, old) == 0

def _snapshot_with_counters(path, name, seconds, solver=None, simplify=None):
    test = {"name": "t", "seconds": seconds, "extra_info": {}}
    if solver is not None:
        test["extra_info"]["solver"] = solver
    if simplify is not None:
        test["extra_info"]["simplify"] = simplify
    payload = {
        "benchmarks": [
            {
                "benchmark": name,
                "status": "ok",
                "total_seconds": seconds,
                "tests": [test],
            }
        ]
    }
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


def test_counter_diff_is_reported_but_not_gated(tmp_path, bench_trend, capsys):
    """Solver-counter growth shows up in the --compare report even when
    wall-clock stays flat — but it never fails the gate by itself."""
    old = _snapshot_with_counters(
        tmp_path / "old.json", "fig", 1.0,
        solver={"propagations": 1000, "conflicts": 10},
        simplify={"preprocess_seconds": 0.5},
    )
    new = _snapshot_with_counters(
        tmp_path / "new.json", "fig", 1.0,
        solver={"propagations": 9000, "conflicts": 80},
        simplify={"preprocess_seconds": 2.0},
    )
    assert bench_trend.compare_snapshots(new, old) == 0
    out = capsys.readouterr().out
    assert "fig.propagations" in out
    assert "fig.conflicts" in out
    assert "fig.preprocess_seconds" in out
    assert "+800%" in out  # propagations delta
    assert "not gated" in out


def test_counter_diff_skips_benchmarks_without_counters(
    tmp_path, bench_trend, capsys
):
    old = _snapshot(tmp_path / "old.json", {"fig": 1.0})
    new = _snapshot(tmp_path / "new.json", {"fig": 1.0})
    assert bench_trend.compare_snapshots(new, old) == 0
    assert "no shared solver counters" in capsys.readouterr().out


def test_default_set_includes_simplify(bench_trend):
    assert "simplify" in bench_trend.DEFAULT_SET
    assert set(bench_trend.DEFAULT_SET) <= set(
        bench_trend.available_benchmarks()
    )
