"""Unit and property tests for the CDCL solver."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat import CNF, Solver, solve_cnf


def brute_force_satisfiable(cnf: CNF) -> bool:
    """Reference check by enumerating all assignments (small formulas only)."""
    variables = list(range(1, cnf.num_vars + 1))
    for bits in itertools.product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        if all(
            any(assignment[abs(l)] == (l > 0) for l in clause)
            for clause in cnf.clauses
        ):
            return True
    return not cnf.clauses or cnf.num_vars == 0 and not cnf.clauses


def check_model(cnf: CNF, model: dict[int, bool]) -> bool:
    return all(
        any(model.get(abs(l), False) == (l > 0) for l in clause)
        for clause in cnf.clauses
    )


class TestBasics:
    def test_empty_formula_is_sat(self):
        solver = Solver()
        assert solver.solve() is True

    def test_single_unit_clause(self):
        cnf = CNF()
        v = cnf.new_var()
        cnf.add_unit(v)
        model = solve_cnf(cnf)
        assert model is not None
        assert model[v] is True

    def test_contradictory_units_unsat(self):
        cnf = CNF()
        v = cnf.new_var()
        cnf.add_unit(v)
        cnf.add_unit(-v)
        assert solve_cnf(cnf) is None

    def test_simple_sat_instance(self):
        cnf = CNF()
        a, b, c = cnf.new_vars(3)
        cnf.add_clause([a, b])
        cnf.add_clause([-a, c])
        cnf.add_clause([-b, c])
        model = solve_cnf(cnf)
        assert model is not None
        assert check_model(cnf, model)

    def test_implication_chain_propagates(self):
        cnf = CNF()
        variables = cnf.new_vars(20)
        cnf.add_unit(variables[0])
        for x, y in zip(variables, variables[1:]):
            cnf.add_clause([-x, y])
        model = solve_cnf(cnf)
        assert model is not None
        assert all(model[v] for v in variables)

    def test_unsat_chain(self):
        cnf = CNF()
        variables = cnf.new_vars(10)
        cnf.add_unit(variables[0])
        for x, y in zip(variables, variables[1:]):
            cnf.add_clause([-x, y])
        cnf.add_unit(-variables[-1])
        assert solve_cnf(cnf) is None

    def test_tautology_is_dropped(self):
        cnf = CNF()
        a = cnf.new_var()
        cnf.add_clause([a, -a])
        assert cnf.num_clauses == 0

    def test_zero_literal_rejected(self):
        cnf = CNF()
        with pytest.raises(ValueError):
            cnf.add_clause([0])

    def test_xor_constraints(self):
        # x1 xor x2 = 1, x2 xor x3 = 1, x1 xor x3 = 1 is unsatisfiable.
        cnf = CNF()
        x1, x2, x3 = cnf.new_vars(3)
        for a, b in [(x1, x2), (x2, x3), (x1, x3)]:
            cnf.add_clause([a, b])
            cnf.add_clause([-a, -b])
        assert solve_cnf(cnf) is None


class TestPigeonhole:
    @pytest.mark.parametrize("holes", [2, 3, 4])
    def test_pigeonhole_unsat(self, holes):
        """n+1 pigeons cannot fit in n holes — classic hard UNSAT family."""
        pigeons = holes + 1
        cnf = CNF()
        grid = [[cnf.new_var() for _ in range(holes)] for _ in range(pigeons)]
        for p in range(pigeons):
            cnf.add_clause(grid[p])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    cnf.add_clause([-grid[p1][h], -grid[p2][h]])
        assert solve_cnf(cnf) is None

    @pytest.mark.parametrize("holes", [3, 4, 5])
    def test_exact_fit_sat(self, holes):
        pigeons = holes
        cnf = CNF()
        grid = [[cnf.new_var() for _ in range(holes)] for _ in range(pigeons)]
        for p in range(pigeons):
            cnf.add_clause(grid[p])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    cnf.add_clause([-grid[p1][h], -grid[p2][h]])
        model = solve_cnf(cnf)
        assert model is not None
        assert check_model(cnf, model)


class TestIncremental:
    def test_blocking_clauses_enumerate_all_models(self):
        cnf = CNF()
        a, b = cnf.new_vars(2)
        cnf.add_clause([a, b])
        solver = Solver(cnf)
        models = []
        while solver.solve():
            model = solver.model()
            models.append((model[a], model[b]))
            solver.add_clause(
                [(-a if model[a] else a), (-b if model[b] else b)]
            )
        assert sorted(models) == [(False, True), (True, False), (True, True)]

    def test_assumptions_sat_and_unsat(self):
        cnf = CNF()
        a, b = cnf.new_vars(2)
        cnf.add_clause([-a, b])
        solver = Solver(cnf)
        assert solver.solve(assumptions=[a]) is True
        assert solver.model()[b] is True
        solver.add_clause([-b])
        assert solver.solve(assumptions=[a]) is False
        # Without the assumption the formula is still satisfiable.
        assert solver.solve() is True
        assert solver.model()[a] is False

    def test_adding_clauses_between_solves(self):
        cnf = CNF()
        variables = cnf.new_vars(4)
        solver = Solver(cnf)
        assert solver.solve() is True
        solver.add_clause([variables[0]])
        solver.add_clause([-variables[0], variables[1]])
        assert solver.solve() is True
        model = solver.model()
        assert model[variables[0]] and model[variables[1]]
        solver.add_clause([-variables[1]])
        assert solver.solve() is False

    def test_unsat_under_assumptions_leaves_solver_reusable(self):
        """Regression test: an UNSAT-under-assumptions result must not poison
        the solver — later solves (with other assumptions or none) must still
        work and produce valid models."""
        cnf = CNF()
        a, b, c = cnf.new_vars(3)
        cnf.add_clause([-a, b])
        cnf.add_clause([-b, c])
        cnf.add_clause([-a, -c])  # a -> b -> c but a forbids c: a must be False
        solver = Solver(cnf)
        assert solver.solve(assumptions=[a]) is False
        # The solver is still usable: plain solve, solve under the opposite
        # assumption, and incremental clause addition all behave.
        assert solver.solve() is True
        assert check_model(cnf, solver.model())
        assert solver.solve(assumptions=[-a]) is True
        model = solver.model()
        assert model[a] is False
        assert check_model(cnf, model)
        solver.add_clause([b])
        assert solver.solve() is True
        assert solver.model()[b] is True
        assert solver.solve(assumptions=[a]) is False
        assert solver.solve(assumptions=[c]) is True

    def test_unsat_under_assumptions_many_rounds(self):
        """Alternating UNSAT/SAT assumption queries on one solver instance
        (the shape of the session's assertion + inclusion query reuse)."""
        cnf = CNF()
        variables = cnf.new_vars(12)
        cnf.add_unit(variables[0])
        for x, y in zip(variables, variables[1:]):
            cnf.add_clause([-x, y])
        solver = Solver(cnf)
        for _ in range(5):
            assert solver.solve(assumptions=[-variables[-1]]) is False
            assert solver.solve(assumptions=[variables[-1]]) is True
            assert solver.solve() is True
            assert check_model(cnf, solver.model())

    def test_conflict_limit_returns_none_or_result(self):
        cnf = CNF()
        holes = 5
        pigeons = holes + 1
        grid = [[cnf.new_var() for _ in range(holes)] for _ in range(pigeons)]
        for p in range(pigeons):
            cnf.add_clause(grid[p])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    cnf.add_clause([-grid[p1][h], -grid[p2][h]])
        solver = Solver(cnf)
        result = solver.solve(conflict_limit=3)
        assert result in (None, False)


class TestStats:
    def test_stats_populated(self):
        cnf = CNF()
        variables = cnf.new_vars(8)
        for i in range(0, 8, 2):
            cnf.add_clause([variables[i], variables[i + 1]])
            cnf.add_clause([-variables[i], -variables[i + 1]])
        solver = Solver(cnf)
        assert solver.solve() is True
        assert solver.stats.decisions >= 1
        assert solver.stats.propagations >= 1


class TestVarOrderHeap:
    def test_pops_by_activity_with_var_tiebreak(self):
        from repro.sat.solver import VarOrderHeap

        activity = [0.0, 1.0, 3.0, 2.0, 3.0]
        heap = VarOrderHeap(activity)
        heap.grow(4)
        for var in (1, 2, 3, 4):
            heap.insert(var)
        # Max activity first; ties (vars 2 and 4) toward the higher var.
        assert heap.pop_max() == 4
        assert heap.pop_max() == 2
        assert heap.pop_max() == 3
        assert heap.pop_max() == 1
        assert heap.pop_max() is None

    def test_reinsert_and_bump_are_lazy(self):
        from repro.sat.solver import VarOrderHeap

        activity = [0.0, 1.0, 2.0]
        heap = VarOrderHeap(activity)
        heap.grow(2)
        heap.insert(1)
        heap.insert(1)  # duplicate insert is a no-op
        heap.insert(2)
        activity[1] = 5.0
        heap.bump(1)  # stale entry for var 1 remains, fresh one wins
        assert heap.pop_max() == 1
        assert heap.pop_max() == 2
        assert heap.pop_max() is None
        assert 1 not in heap

    def test_rebuild_after_rescale(self):
        from repro.sat.solver import VarOrderHeap

        activity = [0.0, 4.0, 8.0]
        heap = VarOrderHeap(activity)
        heap.grow(2)
        heap.insert(1)
        heap.insert(2)
        activity[1] = 4e-100
        activity[2] = 1e-100
        heap.rebuild()
        assert heap.pop_max() == 1
        assert heap.pop_max() == 2


class TestTrustedBulkAdd:
    def test_matches_per_clause_add(self):
        cnf = CNF()
        a, b, c = cnf.new_vars(3)
        cnf.add_clause([a, b])
        cnf.add_clause([-a, c])
        cnf.add_clause([-b, -c])
        bulk = Solver()
        bulk.ensure_vars(cnf.num_vars)
        assert bulk.add_clauses_trusted(cnf.clauses) is True
        single = Solver(cnf)
        assert bulk.solve() == single.solve() is True
        assert check_model(cnf, bulk.model())

    def test_bulk_unit_conflict_is_unsat(self):
        cnf = CNF()
        v = cnf.new_var()
        solver = Solver()
        solver.ensure_vars(1)
        assert solver.add_clauses_trusted([(v,), (-v,)]) is False
        assert solver.solve() is False


@st.composite
def random_cnf(draw):
    num_vars = draw(st.integers(min_value=1, max_value=8))
    num_clauses = draw(st.integers(min_value=1, max_value=24))
    cnf = CNF()
    cnf.new_vars(num_vars)
    for _ in range(num_clauses):
        size = draw(st.integers(min_value=1, max_value=3))
        clause = [
            draw(st.integers(min_value=1, max_value=num_vars))
            * (1 if draw(st.booleans()) else -1)
            for _ in range(size)
        ]
        cnf.add_clause(clause)
    return cnf


class TestAgainstBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(random_cnf())
    def test_matches_brute_force(self, cnf):
        expected = brute_force_satisfiable(cnf)
        model = solve_cnf(cnf)
        if expected:
            assert model is not None
            assert check_model(cnf, model)
        else:
            assert model is None

    @settings(max_examples=30, deadline=None)
    @given(random_cnf())
    def test_model_satisfies_formula(self, cnf):
        model = solve_cnf(cnf)
        if model is not None:
            assert check_model(cnf, model)
