"""Tests for the in-process CNF preprocessor (:mod:`repro.sat.simplify`).

The differential suites compare :class:`SimplifyingBackend` (forced to
preprocess every formula) against brute-force truth tables and against the
bare internal backend — including model *reconstruction* back onto the
original variable space, frozen-variable protection, incremental clause
additions after a solve (with reinstatement of eliminated variables), and
assumptions over simplified-away literals.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.sat import CNF
from repro.sat.backend import InternalBackend
from repro.sat.simplify import (
    Simplifier,
    SimplifyingBackend,
    simplify_cnf,
    simplify_enabled,
    simplify_min_clauses,
)


def forced_backend() -> SimplifyingBackend:
    """A simplifying backend that preprocesses regardless of formula size."""
    return SimplifyingBackend(InternalBackend(), min_clauses=0)


def brute_force_satisfiable(cnf: CNF) -> bool:
    variables = list(range(1, cnf.num_vars + 1))
    for bits in itertools.product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        if all(
            any(assignment[abs(l)] == (l > 0) for l in clause)
            for clause in cnf.clauses
        ):
            return True
    return not cnf.clauses


def satisfies(cnf_or_clauses, model: dict[int, bool]) -> bool:
    clauses = getattr(cnf_or_clauses, "clauses", cnf_or_clauses)
    return all(
        any(model.get(abs(l), False) == (l > 0) for l in clause)
        for clause in clauses
    )


def random_cnf(rng: random.Random) -> CNF:
    num_vars = rng.randint(1, 8)
    cnf = CNF()
    cnf.new_vars(num_vars)
    for _ in range(rng.randint(1, 24)):
        size = rng.randint(1, 3)
        cnf.add_clause([
            rng.randint(1, num_vars) * rng.choice([1, -1])
            for _ in range(size)
        ])
    return cnf


class TestDifferential:
    def test_verdict_and_reconstructed_model_vs_brute_force(self):
        rng = random.Random(20070607)
        for _ in range(300):
            cnf = random_cnf(rng)
            frozen = set(
                rng.sample(range(1, cnf.num_vars + 1),
                           rng.randint(0, cnf.num_vars))
            )
            backend = forced_backend()
            backend.freeze(frozen)
            backend.add_cnf(cnf)
            expected = brute_force_satisfiable(cnf)
            assert backend.solve() == expected, cnf.clauses
            if expected:
                # The reconstructed model must satisfy the ORIGINAL
                # formula, not just the simplified one.
                assert satisfies(cnf, backend.model()), cnf.clauses

    def test_values_of_matches_model_on_frozen_vars(self):
        rng = random.Random(11)
        for _ in range(100):
            cnf = random_cnf(rng)
            frozen = set(range(1, cnf.num_vars + 1, 2))
            backend = forced_backend()
            backend.freeze(frozen)
            backend.add_cnf(cnf)
            if backend.solve():
                model = backend.model()
                values = backend.values_of(sorted(frozen))
                for var in frozen:
                    assert values[var] == model[var]


class TestIncremental:
    def test_post_solve_additions_match_plain_backend(self):
        """Clauses added after the first solve — including clauses over
        variables the preprocessor eliminated (reinstatement) — keep the
        verdicts identical to a backend that never simplified."""
        rng = random.Random(23)
        for _ in range(150):
            cnf = random_cnf(rng)
            backend = forced_backend()
            backend.add_cnf(cnf)
            backend.solve()
            all_clauses = list(cnf.clauses)
            for _round in range(3):
                for _ in range(rng.randint(1, 5)):
                    size = rng.randint(1, 3)
                    clause = tuple(
                        rng.randint(1, cnf.num_vars) * rng.choice([1, -1])
                        for _ in range(size)
                    )
                    if len({abs(l) for l in clause}) != len(clause):
                        continue
                    backend.add_clause(clause)
                    all_clauses.append(clause)
                reference = InternalBackend()
                full = CNF(num_vars=cnf.num_vars)
                for clause in all_clauses:
                    full.add_clause(clause)
                reference.add_cnf(full)
                assumptions = [
                    rng.randint(1, cnf.num_vars) * rng.choice([1, -1])
                    for _ in range(rng.randint(0, 2))
                ]
                expected = reference.solve(assumptions=assumptions)
                got = backend.solve(assumptions=assumptions)
                assert got == expected, (all_clauses, assumptions)
                if got:
                    assert satisfies(all_clauses, backend.model())
                # A later assumption-free solve must not be contaminated.
                assert backend.solve() == reference.solve()

    def test_reinstatement_of_eliminated_variable(self):
        # v2 is a functionally defined AND-gate output (v2 <-> v1 & v3)
        # with two external uses; every other variable is frozen, so
        # bounded variable elimination can only remove v2.
        cnf = CNF()
        v1, v2, v3, v4, v5 = cnf.new_vars(5)
        cnf.add_clause([-v2, v1])
        cnf.add_clause([-v2, v3])
        cnf.add_clause([v2, -v1, -v3])
        cnf.add_clause([v2, v4])
        cnf.add_clause([v1, v3, v5])
        backend = forced_backend()
        backend.freeze([v1, v3, v4, v5])
        backend.add_cnf(cnf)
        assert backend.solve() is True
        assert backend.simplifier.is_eliminated(v2)
        # A new clause mentions the eliminated variable: its defining
        # clauses must be replayed, not dropped.
        backend.add_clause([v2])
        assert backend.solve() is True
        model = backend.model()
        assert model[v2] and model[v1] and model[v3]
        assert backend.simplify_stats.vars_reinstated >= 1
        backend.add_clause([-v1])
        assert backend.solve() is False

    def test_assumption_over_eliminated_variable(self):
        cnf = CNF()
        v1, v2, v3 = cnf.new_vars(3)
        cnf.add_clause([-v2, v1])
        cnf.add_clause([-v2, v3])
        cnf.add_clause([v2, -v1, -v3])
        cnf.add_clause([v1, v3])
        backend = forced_backend()
        backend.add_cnf(cnf)
        assert backend.solve() is True
        if backend.simplifier.is_eliminated(v2):
            assert backend.solve(assumptions=[v2]) is True
            assert backend.model()[v1] and backend.model()[v3]
            assert backend.solve(assumptions=[-v2, v1, v3]) is False

    def test_assumption_fixed_false_is_unsat(self):
        cnf = CNF()
        v1, v2 = cnf.new_vars(2)
        cnf.add_clause([v1])
        cnf.add_clause([v1, v2])
        backend = forced_backend()
        backend.add_cnf(cnf)
        assert backend.solve() is True
        # v1 was fixed by unit propagation; assuming its negation must
        # fail without ever reaching the inner solver.
        assert backend.solve(assumptions=[-v1]) is False
        assert backend.solve(assumptions=[v1]) is True


class TestFrozenProtection:
    def test_frozen_variables_survive(self):
        rng = random.Random(5)
        for _ in range(100):
            cnf = random_cnf(rng)
            frozen = set(
                rng.sample(range(1, cnf.num_vars + 1),
                           rng.randint(1, cnf.num_vars))
            )
            backend = forced_backend()
            backend.freeze(frozen)
            backend.add_cnf(cnf)
            backend.solve()
            simplifier = backend.simplifier
            for var in frozen:
                assert not simplifier.is_eliminated(var)
                assert var not in simplifier.subst

    def test_unfrozen_tseitin_definitions_are_eliminated(self):
        # A chain of AND-gate definitions with a single external use is
        # the textbook elimination target.
        cnf = CNF()
        inputs = cnf.new_vars(4)
        gates = []
        previous = inputs[0]
        for bit in inputs[1:]:
            gate = cnf.new_var()
            cnf.add_clause([-gate, previous])
            cnf.add_clause([-gate, bit])
            cnf.add_clause([gate, -previous, -bit])
            gates.append(gate)
            previous = gate
        cnf.add_unit(previous)
        backend = forced_backend()
        backend.freeze(inputs)
        backend.add_cnf(cnf)
        assert backend.solve() is True
        stats = backend.simplify_stats
        assert stats.vars_eliminated + stats.units_fixed + stats.equiv_merged > 0
        model = backend.model()
        assert satisfies(cnf, model)
        assert all(model[v] for v in inputs)


class TestBypass:
    def test_small_formula_bypasses_preprocessing(self):
        cnf = CNF()
        a, b = cnf.new_vars(2)
        cnf.add_clause([a, b])
        backend = SimplifyingBackend(InternalBackend(), min_clauses=1000)
        backend.add_cnf(cnf)
        assert backend.name == "simplify+internal"
        assert backend.solve() is True
        # Below the threshold the backend delegates untouched and reports
        # the inner backend's identity.
        assert backend.name == "internal"
        assert backend.simplify_stats.clauses_before == 0
        backend.add_clause([-a])
        assert backend.solve() is True
        assert backend.model()[b] is True

    def test_forced_backend_engages(self):
        cnf = CNF()
        a, b = cnf.new_vars(2)
        cnf.add_clause([a, b])
        cnf.add_clause([a, -b])
        backend = forced_backend()
        backend.add_cnf(cnf)
        assert backend.solve() is True
        assert backend.name == "simplify+internal"
        assert backend.simplify_stats.clauses_before == 2
        assert backend.model()[a] is True

    def test_min_clauses_env(self, monkeypatch):
        monkeypatch.setenv("CHECKFENCE_SIMPLIFY_MIN_CLAUSES", "123")
        assert simplify_min_clauses() == 123
        assert simplify_min_clauses(0) == 0
        monkeypatch.setenv("CHECKFENCE_SIMPLIFY_MIN_CLAUSES", "bogus")
        with pytest.raises(ValueError):
            simplify_min_clauses()

    def test_simplify_enabled_env(self, monkeypatch):
        monkeypatch.delenv("CHECKFENCE_SIMPLIFY", raising=False)
        assert simplify_enabled() is True
        monkeypatch.setenv("CHECKFENCE_SIMPLIFY", "0")
        assert simplify_enabled() is False
        assert simplify_enabled(True) is True
        monkeypatch.setenv("CHECKFENCE_SIMPLIFY", "1")
        assert simplify_enabled() is True
        assert simplify_enabled(False) is False


class TestSimplifierUnit:
    def test_unsat_by_unit_propagation(self):
        cnf = CNF()
        a, b = cnf.new_vars(2)
        cnf.add_clause([a])
        cnf.add_clause([-a, b])
        cnf.add_clause([-b])
        backend = forced_backend()
        backend.add_cnf(cnf)
        assert backend.solve() is False

    def test_equivalent_literals_are_merged(self):
        cnf = CNF()
        a, b, c = cnf.new_vars(3)
        # a <-> b (two implications) plus a use of each.
        cnf.add_clause([-a, b])
        cnf.add_clause([a, -b])
        cnf.add_clause([a, c])
        cnf.add_clause([b, c])
        survivors, simplifier = simplify_cnf(cnf)
        assert simplifier.stats.equiv_merged >= 1
        merged = {abs(l) for clause in survivors for l in clause}
        assert not {a, b} <= merged  # one of the pair was substituted away

    def test_subsumption_removes_superset(self):
        cnf = CNF()
        a, b, c = cnf.new_vars(3)
        cnf.add_clause([a, b])
        cnf.add_clause([a, b, c])
        cnf.add_clause([-a, c])
        cnf.add_clause([-b, -c])
        survivors, simplifier = simplify_cnf(
            cnf, frozen=[a, b, c]
        )
        assert simplifier.stats.clauses_subsumed >= 1
        assert (a, b, c) not in survivors

    def test_self_subsuming_resolution_strengthens(self):
        cnf = CNF()
        a, b, c = cnf.new_vars(3)
        cnf.add_clause([a, b])          # C
        cnf.add_clause([a, -b, c])      # D -> strengthened to (a, c)
        cnf.add_clause([-a, c])
        cnf.add_clause([-c, b])
        survivors, simplifier = simplify_cnf(cnf, frozen=[a, b, c])
        assert simplifier.stats.literals_strengthened >= 1

    def test_pure_literal_is_recorded_for_reconstruction(self):
        cnf = CNF()
        a, b = cnf.new_vars(2)
        cnf.add_clause([a, b])  # a occurs only positively
        backend = forced_backend()
        backend.freeze([b])
        backend.add_cnf(cnf)
        assert backend.solve() is True
        assert satisfies(cnf, backend.model())

    def test_preprocess_runs_once(self):
        simplifier = Simplifier()
        simplifier.preprocess([(1, 2)])
        with pytest.raises(RuntimeError):
            simplifier.preprocess([(1,)])


class TestSolverValuesOf:
    def test_values_of_matches_model(self):
        from repro.sat.solver import Solver

        cnf = CNF()
        a, b, c = cnf.new_vars(3)
        cnf.add_clause([a])
        cnf.add_clause([-a, b])
        solver = Solver(cnf)
        assert solver.values_of([a, b]) == {}  # no model yet
        assert solver.solve() is True
        model = solver.model()
        assert solver.values_of([a, b, c]) == {
            a: model[a], b: model[b], c: model[c]
        }
        # Out-of-range variables read as False instead of raising.
        assert solver.values_of([99])[99] is False
