"""Tests for the pluggable solver backend layer.

The differential suite checks random small CNFs three ways:

* :class:`InternalBackend` against brute-force truth-table enumeration;
* :class:`DimacsBackend` driving the in-tree solver through a real
  subprocess + DIMACS pipe (``python -m repro.sat.dimacs_cli``), which is
  always available;
* :class:`DimacsBackend` driving an external solver (kissat/cadical/...),
  skipped when none is installed.
"""

from __future__ import annotations

import itertools
import os
import random
import sys

import pytest

from repro.sat import CNF
from repro.sat.backend import (
    BackendError,
    DimacsBackend,
    InternalBackend,
    find_dimacs_solver,
    make_backend_factory,
)


#: DimacsBackend command that is always runnable: the in-tree solver behind
#: a DIMACS pipe (see also the dimacs_cli_command fixture in tests/conftest).
_CLI_COMMAND = [sys.executable, "-m", "repro.sat.dimacs_cli"]


@pytest.fixture(autouse=True)
def _subprocess_path(src_on_subprocess_path):
    """Every test here may spawn the DIMACS CLI subprocess."""


def brute_force_satisfiable(cnf: CNF) -> bool:
    variables = list(range(1, cnf.num_vars + 1))
    for bits in itertools.product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        if all(
            any(assignment[abs(l)] == (l > 0) for l in clause)
            for clause in cnf.clauses
        ):
            return True
    return not cnf.clauses


def check_model(cnf: CNF, model: dict[int, bool]) -> bool:
    return all(
        any(model.get(abs(l), False) == (l > 0) for l in clause)
        for clause in cnf.clauses
    )


def random_cnfs(count: int, seed: int = 20070607):
    """Deterministic stream of small random CNFs."""
    rng = random.Random(seed)
    for _ in range(count):
        num_vars = rng.randint(1, 7)
        num_clauses = rng.randint(1, 20)
        cnf = CNF()
        cnf.new_vars(num_vars)
        for _ in range(num_clauses):
            size = rng.randint(1, 3)
            cnf.add_clause([
                rng.randint(1, num_vars) * rng.choice([1, -1])
                for _ in range(size)
            ])
        yield cnf


def run_differential(make_backend, count: int) -> None:
    for cnf in random_cnfs(count):
        expected = brute_force_satisfiable(cnf)
        backend = make_backend()
        backend.add_cnf(cnf)
        got = backend.solve()
        assert got == expected, f"{backend.name} disagrees on {cnf!r}"
        if got:
            assert check_model(cnf, backend.model()), (
                f"{backend.name} returned an invalid model for {cnf!r}"
            )


class TestInternalBackend:
    def test_differential_vs_brute_force(self):
        run_differential(InternalBackend, count=120)

    def test_assumptions_and_stats(self):
        cnf = CNF()
        a, b = cnf.new_vars(2)
        cnf.add_clause([-a, b])
        backend = InternalBackend()
        backend.add_cnf(cnf)
        assert backend.solve(assumptions=[a]) is True
        assert backend.model()[b] is True
        backend.add_clause([-b])
        assert backend.solve(assumptions=[a]) is False
        assert backend.solve() is True
        assert backend.stats().propagations >= 1
        assert backend.name == "internal"


class TestDimacsBackendViaCli:
    """The subprocess/DIMACS path, exercised with the in-tree solver CLI."""

    def test_differential_vs_brute_force(self):
        run_differential(
            lambda: DimacsBackend(command=_CLI_COMMAND), count=25
        )

    def test_assumptions_are_temporary(self):
        cnf = CNF()
        a, b = cnf.new_vars(2)
        cnf.add_clause([a, b])
        backend = DimacsBackend(command=_CLI_COMMAND)
        backend.add_cnf(cnf)
        assert backend.solve(assumptions=[-a, -b]) is False
        # The assumptions must not have become permanent clauses.
        assert backend.solve() is True
        assert backend.solve(assumptions=[-a]) is True
        assert backend.model()[b] is True

    def test_name_reflects_command(self):
        backend = DimacsBackend(command=_CLI_COMMAND)
        assert backend.name.startswith("dimacs(")

    def test_empty_clause_is_unsat_without_subprocess(self):
        backend = DimacsBackend(command=["/nonexistent-solver"])
        assert backend.add_clause([]) is False
        assert backend.solve() is False

    def test_broken_command_raises(self):
        backend = DimacsBackend(command=["/nonexistent-solver-binary"])
        backend.add_clause([1])
        with pytest.raises(BackendError):
            backend.solve()

    def test_missing_binary_error_is_actionable(self):
        """A missing solver binary must name the binary, show the PATH
        that was searched, and point at the ways out."""
        backend = DimacsBackend(command=["no-such-solver-xyz"])
        backend.add_clause([1])
        with pytest.raises(BackendError) as excinfo:
            backend.solve()
        message = str(excinfo.value)
        assert "no-such-solver-xyz" in message
        assert "PATH" in message
        assert os.environ.get("PATH", "") in message
        assert "--solver internal" in message


@pytest.mark.skipif(
    find_dimacs_solver() is None,
    reason="no external DIMACS solver (kissat/cadical/minisat/...) on PATH",
)
class TestDimacsBackendExternal:
    def test_differential_vs_brute_force(self):
        run_differential(DimacsBackend, count=25)

    def test_reports_external_name(self):
        backend = DimacsBackend()
        assert backend.name.startswith("dimacs(")
        assert "fallback" not in backend.name


class TestFallback:
    def test_fallback_when_nothing_on_path(self, monkeypatch):
        monkeypatch.setattr(
            "repro.sat.backend.find_dimacs_solver", lambda: None
        )
        backend = DimacsBackend()
        assert backend.name == "dimacs(fallback:internal)"
        cnf = CNF()
        v = cnf.new_var()
        cnf.add_unit(v)
        backend.add_cnf(cnf)
        assert backend.solve() is True
        assert backend.model()[v] is True

    def test_no_fallback_raises(self, monkeypatch):
        monkeypatch.setattr(
            "repro.sat.backend.find_dimacs_solver", lambda: None
        )
        with pytest.raises(BackendError):
            DimacsBackend(fallback=False)


class TestBackendSpecs:
    def test_internal_specs(self):
        for spec in ("auto", "internal", ""):
            assert isinstance(make_backend_factory(spec)(), InternalBackend)

    def test_dimacs_spec_with_command(self):
        factory = make_backend_factory(
            "dimacs:" + " ".join(_CLI_COMMAND)
        )
        backend = factory()
        assert isinstance(backend, DimacsBackend)
        backend.add_clause([1])
        assert backend.solve() is True

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("CHECKFENCE_SOLVER", "internal")
        assert isinstance(make_backend_factory(None)(), InternalBackend)

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError):
            make_backend_factory("zchaff")
        with pytest.raises(ValueError):
            make_backend_factory("dimacs:")
