"""Regression tests for solver subprocess teardown.

An external solver stuck in a long propagation — or one that ignores
SIGTERM outright — used to be leaked by ``IncrementalPipeBackend.close``
(quit command + bounded wait, no escalation).  These tests pin the
quit → terminate → kill escalation with deliberately misbehaving stub
processes.
"""

import subprocess
import sys
import time

from repro.sat.ipasir import IncrementalPipeBackend

# A "solver" that ignores both the protocol's quit command and SIGTERM:
# it reads stdin forever and sleeps through EOF.  Only SIGKILL reaps it.
_STUBBORN_STUB = [
    sys.executable,
    "-c",
    (
        "import signal, sys, time\n"
        "signal.signal(signal.SIGTERM, signal.SIG_IGN)\n"
        "for _ in sys.stdin:\n"
        "    pass\n"
        "while True:\n"
        "    time.sleep(3600)\n"
    ),
]

# A solver that exits promptly on the quit command (the happy path).
_POLITE_STUB = [
    sys.executable,
    "-c",
    (
        "import sys\n"
        "for line in sys.stdin:\n"
        "    if line.strip() == 'q':\n"
        "        sys.exit(0)\n"
    ),
]


class TestPipeBackendShutdown:
    def test_close_reaps_sigterm_ignoring_solver(self):
        backend = IncrementalPipeBackend(command=_STUBBORN_STUB)
        process = backend._ensure_process()
        assert process.poll() is None
        started = time.monotonic()
        backend.close()
        # close() must have escalated all the way to SIGKILL and reaped
        # the process — no zombie, no leak, and within the two bounded
        # waits (2 s each) plus slack.
        assert process.poll() is not None
        assert time.monotonic() - started < 30
        assert backend._process is None

    def test_close_is_idempotent_after_escalation(self):
        backend = IncrementalPipeBackend(command=_STUBBORN_STUB)
        backend._ensure_process()
        backend.close()
        backend.close()  # second close on a dead/absent process: no-op

    def test_close_prefers_graceful_quit(self):
        backend = IncrementalPipeBackend(command=_POLITE_STUB)
        process = backend._ensure_process()
        started = time.monotonic()
        backend.close()
        assert process.poll() == 0  # exited via the protocol, not a signal
        assert time.monotonic() - started < 5

    def test_close_without_process_is_noop(self):
        backend = IncrementalPipeBackend(command=_POLITE_STUB)
        backend.close()

    def test_dead_solver_is_detected_not_leaked(self):
        backend = IncrementalPipeBackend(
            command=[sys.executable, "-c", "import sys; sys.exit(7)"]
        )
        process = backend._ensure_process()
        process.wait(timeout=10)
        # close() on an already-dead process must not raise or hang.
        backend.close()
        assert backend._process is None
