"""Shared conformance suite for every SolverBackend implementation.

Each backend family — internal CDCL, DIMACS subprocess (over the in-tree
CLI, so no system solver is needed), IPASIR shared library (a C stub
compiled on the fly with gcc), the incremental pipe, and the simplifying
wrapper — must satisfy the same observable contract: solving under
temporary assumptions, failed-assumption cores after UNSAT, incremental
clause addition after both SAT and UNSAT verdicts, and ``values_of``
agreement with ``model``.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys

import pytest

from repro.sat.backend import DimacsBackend, InternalBackend
from repro.sat.ipasir import IncrementalPipeBackend, IpasirBackend
from repro.sat.simplify import SimplifyingBackend

_CLI_COMMAND = [sys.executable, "-m", "repro.sat.dimacs_cli"]


@pytest.fixture(autouse=True)
def src_on_subprocess_path(monkeypatch):
    """Subprocess backends must find the repro package."""
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    src = os.path.abspath(src)
    existing = os.environ.get("PYTHONPATH")
    monkeypatch.setenv(
        "PYTHONPATH", src + os.pathsep + existing if existing else src
    )


@pytest.fixture(scope="session")
def ipasir_stub_library(tmp_path_factory):
    """Compile tests/sat/ipasir_stub.c into a shared library once per
    session; skip the IPASIR-library lane when no C compiler is around."""
    compiler = shutil.which("cc") or shutil.which("gcc")
    if compiler is None:
        pytest.skip("no C compiler available to build the IPASIR stub")
    source = os.path.join(os.path.dirname(__file__), "ipasir_stub.c")
    out_dir = tmp_path_factory.mktemp("ipasir-stub")
    library = str(out_dir / "libipasirstub.so")
    build = subprocess.run(
        [compiler, "-shared", "-fPIC", "-O1", "-o", library, source],
        capture_output=True, text=True,
    )
    if build.returncode != 0:
        pytest.skip(f"IPASIR stub build failed: {build.stderr.strip()}")
    return library


BACKENDS = ["internal", "dimacs", "ipasir-lib", "ipasir-pipe", "simplify"]


@pytest.fixture(params=BACKENDS)
def backend(request):
    kind = request.param
    if kind == "internal":
        made = InternalBackend()
    elif kind == "dimacs":
        made = DimacsBackend(command=_CLI_COMMAND)
    elif kind == "ipasir-lib":
        library = request.getfixturevalue("ipasir_stub_library")
        made = IpasirBackend(library)
    elif kind == "ipasir-pipe":
        made = IncrementalPipeBackend()
    else:
        made = SimplifyingBackend(InternalBackend(), min_clauses=0)
    yield made
    close = getattr(made, "close", None)
    if close is not None:
        close()


def test_solve_under_assumptions_is_temporary(backend):
    backend.ensure_vars(2)
    backend.add_clause([1, 2])
    assert backend.solve([-1]) is True
    assert backend.values_of([2]) == {2: True}
    # The assumption does not persist: both polarities stay reachable.
    assert backend.solve([1]) is True
    assert backend.values_of([1]) == {1: True}
    assert backend.solve() is True


def test_failed_assumption_core(backend):
    backend.ensure_vars(3)
    backend.add_clause([1, 2])
    assumptions = [-1, -2, 3]
    assert backend.solve(assumptions) is False
    core = backend.failed_assumptions()
    assert core, "UNSAT under assumptions must yield a non-empty core"
    assert set(core) <= set(assumptions)
    # The core alone must still be unsatisfiable with the formula.
    assert backend.solve(core) is False


def test_formula_level_unsat_core_is_sound(backend, request):
    backend.ensure_vars(1)
    backend.add_clause([1])
    backend.add_clause([-1])
    assert backend.solve([1]) is False
    core = backend.failed_assumptions()
    # Every backend must stay within the assumption set; the precise
    # backends additionally report the empty core (= the formula alone is
    # unsatisfiable).  DIMACS and simple IPASIR solvers may
    # over-approximate with the full assumption set, which is sound.
    assert set(core) <= {1}
    if request.node.callspec.params["backend"] in ("internal", "simplify"):
        assert core == []


def test_incremental_addition_after_sat(backend):
    backend.ensure_vars(2)
    backend.add_clause([1, 2])
    assert backend.solve() is True
    backend.add_clause([-1])
    assert backend.solve() is True
    assert backend.values_of([1, 2]) == {1: False, 2: True}
    backend.add_clause([-2])
    assert backend.solve() is False


def test_incremental_addition_after_unsat_verdict(backend):
    backend.ensure_vars(3)
    backend.add_clause([1, 2])
    assert backend.solve([-1, -2]) is False
    # An UNSAT-under-assumptions verdict must not poison later solves.
    backend.add_clause([3])
    assert backend.solve() is True
    assert backend.values_of([3]) == {3: True}


def test_values_of_agrees_with_model(backend):
    backend.ensure_vars(4)
    backend.add_clauses([[1], [-1, 2], [3, 4], [-3]])
    assert backend.solve() is True
    model = backend.model()
    values = backend.values_of([1, 2, 3, 4])
    assert values == {var: model[var] for var in (1, 2, 3, 4)}
    assert values[1] is True and values[2] is True
    assert values[3] is False and values[4] is True


def test_core_is_empty_after_sat(backend):
    """Uniform contract (regression): ``failed_assumptions()`` is non-empty
    only when the MOST RECENT solve returned UNSAT.  A core-guided search
    interleaves UNSAT and SAT solves on one backend, and a stale core
    surviving a SAT verdict would silently corrupt its working set."""
    backend.ensure_vars(2)
    backend.add_clause([1, 2])
    # Before any solve: nothing to report.
    assert backend.failed_assumptions() == []
    # UNSAT under assumptions: some core appears.
    assert backend.solve([-1, -2]) is False
    assert backend.failed_assumptions()
    # The very next SAT solve must clear it — even for backends whose
    # UNSAT core is the conservative full assumption set.
    assert backend.solve([-1]) is True
    assert backend.failed_assumptions() == []
    # And a SAT solve with no assumptions at all.
    assert backend.solve([-1, -2]) is False
    assert backend.failed_assumptions()
    assert backend.solve() is True
    assert backend.failed_assumptions() == []


def test_core_driven_deletion_search_parity(backend):
    """A miniature of the fence-synthesis loop: selector assumptions guard
    constraints, the all-on core seeds a working set, and destructive
    deletion (fixed order) minimizes it.  Every backend must converge to
    the same minimal set — exact cores (internal, IPASIR, simplify with
    its substitution-origin mapping) just get there with fewer solves than
    conservative full-set cores (DIMACS restart).

    The formula routes the selectors through equivalence chains, so under
    the simplifying backend the core literals come back through the
    preprocessor's assumption-origin substitution map.
    """
    # Vars: 1 = x; selectors 2..5; 6,7 = aliases of selectors 2,3.
    backend.ensure_vars(7)
    backend.add_clauses([
        [-6, -1], [-2, 6], [6, -2],     # 6 <-> s2,  alias6 -> not x
        [-7, 1], [-3, 7], [7, -3],      # 7 <-> s3,  alias7 -> x
    ])
    selectors = [2, 3, 4, 5]
    assert backend.solve(selectors) is False
    core = [lit for lit in backend.failed_assumptions() if lit in selectors]
    assert core, "all-on UNSAT must produce a selector core"
    working = set(core)
    # Destructive deletion in fixed descending order.
    for selector in sorted(working, reverse=True):
        trial = sorted(working - {selector})
        if backend.solve(trial) is False:
            working = set(trial)
    assert working == {2, 3}
    # 1-minimality: dropping either remaining selector is SAT again.
    assert backend.solve([2]) is True
    assert backend.solve([3]) is True


def test_blocking_clause_enumeration(backend):
    """The solve/block loop every mining pass runs: enumerate all models
    over a small variable set by blocking each one found."""
    backend.ensure_vars(2)
    backend.add_clause([1, 2])
    seen = set()
    while backend.solve() is True:
        values = backend.values_of([1, 2])
        seen.add((values[1], values[2]))
        backend.add_clause(
            [-1 if values[1] else 1, -2 if values[2] else 2]
        )
        assert len(seen) <= 4, "enumeration failed to terminate"
    assert seen == {(True, True), (True, False), (False, True)}
