"""Tests for the circuit layer (Tseitin lowering) and bit-vectors."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat import BitVecBuilder, Circuit, CnfLowering, Solver, width_for


def solve_handle(circuit: Circuit, handle: int, extra_asserts=()):
    """Lower the circuit, assert the handle, and solve."""
    lowering = CnfLowering(circuit)
    lowering.assert_true(handle)
    for h in extra_asserts:
        lowering.assert_true(h)
    solver = Solver(lowering.cnf)
    sat = solver.solve()
    return sat, solver, lowering


class TestCircuit:
    def test_constants(self):
        c = Circuit()
        assert c.and_(c.TRUE, c.TRUE) == c.TRUE
        assert c.and_(c.TRUE, c.FALSE) == c.FALSE
        assert c.or_(c.FALSE, c.FALSE) == c.FALSE
        assert c.or_(c.TRUE, c.FALSE) == c.TRUE

    def test_structural_hashing(self):
        c = Circuit()
        a, b = c.var("a"), c.var("b")
        assert c.and_(a, b) == c.and_(b, a)
        assert c.or_(a, b) == c.or_(b, a)

    def test_simplifications(self):
        c = Circuit()
        a = c.var("a")
        assert c.and_(a, a) == a
        assert c.and_(a, -a) == c.FALSE
        assert c.or_(a, -a) == c.TRUE
        assert c.ite(c.TRUE, a, -a) == a
        assert c.ite(c.FALSE, a, -a) == -a
        assert c.ite(c.var("cond"), a, a) == a

    def test_and_is_satisfiable_only_when_inputs_true(self):
        c = Circuit()
        a, b = c.var("a"), c.var("b")
        sat, solver, lowering = solve_handle(c, c.and_(a, b))
        assert sat
        model = solver.model()
        assert lowering.evaluate(a, model) and lowering.evaluate(b, model)

    def test_contradiction_unsat(self):
        c = Circuit()
        a = c.var("a")
        node = c.and_(c.or_(a, c.FALSE), -a)
        sat, _, _ = solve_handle(c, node)
        assert not sat

    def test_xor_iff(self):
        c = Circuit()
        a, b = c.var("a"), c.var("b")
        sat, solver, lowering = solve_handle(c, c.and_(c.xor(a, b), a))
        assert sat
        model = solver.model()
        assert lowering.evaluate(a, model) is True
        assert lowering.evaluate(b, model) is False
        sat, _, _ = solve_handle(c, c.and_(c.iff(a, b), a, -b))
        assert not sat

    def test_implies(self):
        c = Circuit()
        a, b = c.var("a"), c.var("b")
        sat, _, _ = solve_handle(c, c.and_(c.implies(a, b), a, -b))
        assert not sat

    def test_evaluate_without_lowering_structural(self):
        c = Circuit()
        node = c.and_(c.TRUE, c.TRUE)
        lowering = CnfLowering(c)
        assert lowering.evaluate(node, {}) is True

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=6))
    def test_and_many_matches_python_all(self, values):
        c = Circuit()
        handles = [c.TRUE if v else c.FALSE for v in values]
        assert (c.and_many(handles) == c.TRUE) == all(values)
        assert (c.or_many(handles) == c.TRUE) == any(values)


class TestBitVec:
    def setup_method(self):
        self.circuit = Circuit()
        self.bv = BitVecBuilder(self.circuit)

    def _concrete(self, vec):
        """Decode a constant vector without solving."""
        return BitVecBuilder.decode(vec, lambda h: h == self.circuit.TRUE)

    def test_const_roundtrip(self):
        for value in [0, 1, 5, 13, 255]:
            width = max(1, value.bit_length())
            vec = self.bv.const(value, width)
            assert self._concrete(vec) == value

    def test_const_overflow_rejected(self):
        with pytest.raises(ValueError):
            self.bv.const(4, 2)
        with pytest.raises(ValueError):
            self.bv.const(-1, 4)

    def test_eq_of_constants(self):
        a = self.bv.const(6, 4)
        b = self.bv.const(6, 4)
        d = self.bv.const(7, 4)
        assert self.bv.eq(a, b) == self.circuit.TRUE
        assert self.bv.eq(a, d) == self.circuit.FALSE

    def test_zero_extend_and_mixed_width_eq(self):
        a = self.bv.const(3, 2)
        b = self.bv.const(3, 5)
        assert self.bv.eq(a, b) == self.circuit.TRUE

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 31), st.integers(0, 31))
    def test_add_matches_python(self, x, y):
        a = self.bv.const(x, 6)
        b = self.bv.const(y, 6)
        assert self._concrete(self.bv.add(a, b)) == (x + y) % 64

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 63), st.integers(0, 63))
    def test_sub_matches_python(self, x, y):
        a = self.bv.const(x, 6)
        b = self.bv.const(y, 6)
        assert self._concrete(self.bv.sub(a, b)) == (x - y) % 64

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 63), st.integers(0, 63))
    def test_comparisons_match_python(self, x, y):
        a = self.bv.const(x, 6)
        b = self.bv.const(y, 6)
        assert (self.bv.ult(a, b) == self.circuit.TRUE) == (x < y)
        assert (self.bv.ule(a, b) == self.circuit.TRUE) == (x <= y)
        assert (self.bv.ugt(a, b) == self.circuit.TRUE) == (x > y)
        assert (self.bv.uge(a, b) == self.circuit.TRUE) == (x >= y)

    def test_symbolic_addition_solved(self):
        a = self.bv.fresh(4, "a")
        b = self.bv.fresh(4, "b")
        total = self.bv.add(a, b)
        constraint = self.circuit.and_(
            self.bv.eq_const(total, 9), self.bv.eq_const(a, 4)
        )
        sat, solver, lowering = solve_handle(self.circuit, constraint)
        assert sat
        model = solver.model()
        decoded_b = BitVecBuilder.decode(
            b, lambda h: lowering.evaluate(h, model)
        )
        assert decoded_b == 5

    def test_symbolic_inequality_unsat(self):
        a = self.bv.fresh(3, "a")
        constraint = self.circuit.and_(
            self.bv.ult(a, self.bv.const(2, 3)),
            self.bv.eq_const(a, 5),
        )
        sat, _, _ = solve_handle(self.circuit, constraint)
        assert not sat

    def test_ite_select(self):
        cond = self.circuit.var("cond")
        a = self.bv.const(3, 4)
        b = self.bv.const(12, 4)
        picked = self.bv.ite(cond, a, b)
        constraint = self.circuit.and_(cond, self.bv.eq_const(picked, 3))
        sat, _, _ = solve_handle(self.circuit, constraint)
        assert sat
        constraint = self.circuit.and_(-cond, self.bv.eq_const(picked, 3))
        sat, _, _ = solve_handle(self.circuit, constraint)
        assert not sat

    def test_select_table(self):
        index = self.bv.fresh(2, "idx")
        table = [self.bv.const(v, 4) for v in (7, 3, 9, 1)]
        out = self.bv.select(index, table, self.bv.const(0, 4))
        constraint = self.circuit.and_(
            self.bv.eq_const(index, 2), self.bv.eq_const(out, 9)
        )
        sat, _, _ = solve_handle(self.circuit, constraint)
        assert sat

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 255))
    def test_width_for(self, value):
        width = width_for(value)
        assert value < (1 << width)
        if value > 1:
            assert value >= (1 << (width - 1))


class TestDimacs:
    def test_roundtrip(self, tmp_path):
        from repro.sat import CNF, read_dimacs, write_dimacs

        cnf = CNF()
        a, b, c = cnf.new_vars(3)
        cnf.add_clause([a, -b])
        cnf.add_clause([b, c])
        path = tmp_path / "out.cnf"
        write_dimacs(cnf, path, comments=["test formula"])
        loaded = read_dimacs(path)
        assert loaded.num_vars == 3
        assert sorted(loaded.clauses) == sorted(cnf.clauses)
