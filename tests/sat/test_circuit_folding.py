"""Hash-consing and constant-folding guarantees of the circuit layer.

The encoder leans on these structural identities for the shared-skeleton
optimization: because equal subformulas get equal handles, the per-model
encoding layer re-deriving a constraint the skeleton already built costs
zero new nodes.  These tests pin the folding rules down and — the point
of the exercise — assert that *node counts* stay flat when redundant
structure is rebuilt.
"""

from repro.sat import Circuit


class TestConstantFolding:
    def test_and_constants(self):
        c = Circuit()
        a = c.var("a")
        assert c.and_(a, c.TRUE) == a
        assert c.and_(c.TRUE, a) == a
        assert c.and_(a, c.FALSE) == c.FALSE
        assert c.and_(c.FALSE, a) == c.FALSE
        assert c.and_(c.TRUE, c.TRUE) == c.TRUE

    def test_or_constants(self):
        c = Circuit()
        a = c.var("a")
        assert c.or_(a, c.FALSE) == a
        assert c.or_(c.FALSE, a) == a
        assert c.or_(a, c.TRUE) == c.TRUE
        assert c.or_(c.FALSE, c.FALSE) == c.FALSE

    def test_complement_and_idempotence(self):
        c = Circuit()
        a = c.var("a")
        assert c.and_(a, a) == a
        assert c.and_(a, -a) == c.FALSE
        assert c.or_(a, a) == a
        assert c.or_(a, -a) == c.TRUE

    def test_nary_folds(self):
        c = Circuit()
        a, b = c.var("a"), c.var("b")
        assert c.and_many([]) == c.TRUE
        assert c.or_many([]) == c.FALSE
        assert c.and_many([a]) == a
        assert c.and_(a, b, -a) == c.FALSE
        assert c.and_(c.TRUE, a, c.TRUE, b, c.TRUE) == c.and_(a, b)

    def test_derived_gate_folds(self):
        c = Circuit()
        a = c.var("a")
        assert c.implies(c.FALSE, a) == c.TRUE
        assert c.implies(a, c.TRUE) == c.TRUE
        assert c.implies(a, a) == c.TRUE
        assert c.xor(a, a) == c.FALSE
        assert c.xor(a, -a) == c.TRUE
        assert c.iff(a, a) == c.TRUE
        assert c.ite(c.TRUE, a, -a) == a
        assert c.ite(c.FALSE, a, -a) == -a
        assert c.ite(c.var("cond"), a, a) == a


class TestCanonicalization:
    def test_commutativity(self):
        c = Circuit()
        a, b = c.var("a"), c.var("b")
        assert c.and_(a, b) == c.and_(b, a)
        assert c.or_(a, b) == c.or_(b, a)
        assert c.and_(a, b, c.var("x")) != c.and_(a, b)

    def test_duplicate_children_collapse(self):
        c = Circuit()
        a, b = c.var("a"), c.var("b")
        assert c.and_(a, b, a, b) == c.and_(a, b)
        assert c.or_(a, b, b, a) == c.or_(a, b)

    def test_nested_ands_stay_narrow_but_share(self):
        # Nested conjunctions are deliberately NOT flattened into wide
        # n-ary nodes (wide gates lower to wide Tseitin clauses that
        # defeat bounded variable elimination); instead the nested form
        # is consed, so rebuilding it in any association order is free.
        c = Circuit()
        a, b, x = c.var("a"), c.var("b"), c.var("x")
        nested = c.and_(c.and_(a, b), x)
        assert c.and_(x, c.and_(a, b)) == nested
        assert nested != c.and_(a, b, x)
        # De Morgan makes or_ the dual, so nested ORs cons the same way.
        assert c.or_(x, c.or_(a, b)) == c.or_(c.or_(a, b), x)

    def test_de_morgan_duality(self):
        c = Circuit()
        a, b = c.var("a"), c.var("b")
        assert c.or_(a, b) == -c.and_(-a, -b)
        assert c.and_(a, b) == -c.or_(-a, -b)


class TestNodeCounts:
    """Folding must show up as *fewer nodes*, not just equal handles."""

    def test_rebuilding_same_expression_adds_no_nodes(self):
        c = Circuit()
        a, b, x = c.var("a"), c.var("b"), c.var("x")
        first = c.ite(x, c.and_(a, b), c.or_(a, b))
        before = c.num_nodes
        second = c.ite(x, c.and_(a, b), c.or_(a, b))
        assert second == first
        assert c.num_nodes == before

    def test_commuted_rebuild_adds_no_nodes(self):
        c = Circuit()
        a, b = c.var("a"), c.var("b")
        first = c.and_(a, b)
        before = c.num_nodes
        assert c.and_(b, a) == first
        assert c.or_(-b, -a) == -first
        assert c.num_nodes == before

    def test_constant_folds_add_no_nodes(self):
        c = Circuit()
        a, b = c.var("a"), c.var("b")
        c.and_(a, b)
        before = c.num_nodes
        c.and_(a, c.TRUE)
        c.and_(a, -a)
        c.or_(a, c.TRUE)
        c.ite(c.TRUE, a, b)
        c.and_(c.and_(a, b), c.TRUE)
        assert c.num_nodes == before

    def test_redundant_input_shares_structure(self):
        # Re-conjoining duplicate operands reuses the consed canonical
        # node instead of growing a new one.
        c = Circuit()
        a, b, x = c.var("a"), c.var("b"), c.var("x")
        abx = c.and_(a, b, x)
        before = c.num_nodes
        assert c.and_(abx, abx) == abx
        assert c.and_(x, b, a) == abx
        assert c.and_(a, b, x, a, b) == abx
        assert c.num_nodes == before

    def test_accumulation_loop_is_linear(self):
        # g = and_(g, step_i) over n steps must create O(n) nodes, not the
        # O(n^2) a naive re-expansion of ever-wider children would.
        c = Circuit()
        steps = c.vars(64, "s")
        base = c.num_nodes
        g = c.TRUE
        for s in steps:
            g = c.and_(g, s)
        grown = c.num_nodes - base
        assert grown <= 4 * len(steps)

    def test_copy_preserves_consing(self):
        # The skeleton/layer split copies the circuit; handles minted before
        # the copy must keep folding against nodes built after it.
        c = Circuit()
        a, b = c.var("a"), c.var("b")
        ab = c.and_(a, b)
        layer = c.copy()
        before = layer.num_nodes
        assert layer.and_(a, b) == ab
        assert layer.and_(b, a) == ab
        assert layer.num_nodes == before
        # ...and growing the copy never disturbs the original.
        layer.and_(ab, layer.var("m"))
        assert c.num_nodes == before
