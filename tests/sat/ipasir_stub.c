/* A minimal IPASIR-compliant SAT solver, used to exercise the ctypes
 * loading path of repro.sat.ipasir on machines with no system SAT
 * library installed.  The test session compiles it with
 *
 *     gcc -shared -fPIC -O1 -o libipasirstub.so ipasir_stub.c
 *
 * (see tests/sat/test_backend_contract.py).  Solving is plain recursive
 * DPLL over the variables that occur in the formula — exponential, but
 * the contract suite only feeds it a handful of variables.  After an
 * UNSAT solve, ipasir_failed reports every assumption as failed (the
 * conservative superset the IPASIR contract permits).
 */

#include <stdlib.h>
#include <string.h>

typedef struct {
    int *lits;          /* clause literals, one 0 terminator per clause */
    size_t nlits, cap;
    int *assumps;
    size_t nassumps, acap;
    int assumps_stale;   /* assumptions belong to the previous solve */
    int maxvar;
    signed char *values; /* 1-based; 0 unknown, 1 true, -1 false */
    int last_result;     /* 10 SAT / 20 UNSAT / 0 never solved */
} Stub;

static void push_lit(Stub *s, int lit) {
    if (s->nlits == s->cap) {
        s->cap = s->cap ? s->cap * 2 : 256;
        s->lits = (int *)realloc(s->lits, s->cap * sizeof(int));
    }
    s->lits[s->nlits++] = lit;
}

/* 1 satisfiable under vals, 0 conflict, -1 undecided */
static int formula_status(const Stub *s, const signed char *vals) {
    size_t i = 0;
    int decided_all = 1;
    while (i < s->nlits) {
        int clause_true = 0, clause_open = 0;
        for (; s->lits[i]; i++) {
            int lit = s->lits[i];
            int var = lit > 0 ? lit : -lit;
            signed char v = vals[var];
            if (v == 0)
                clause_open = 1;
            else if ((v > 0) == (lit > 0))
                clause_true = 1;
        }
        i++; /* skip the 0 terminator */
        if (!clause_true) {
            if (!clause_open)
                return 0;
            decided_all = 0;
        }
    }
    return decided_all ? 1 : -1;
}

static int dpll(const Stub *s, signed char *vals) {
    int status = formula_status(s, vals);
    if (status >= 0)
        return status;
    int var = 0;
    for (int v = 1; v <= s->maxvar; v++)
        if (vals[v] == 0) { var = v; break; }
    if (!var)
        return 1; /* unreachable: undecided formula has an open variable */
    vals[var] = 1;
    if (dpll(s, vals))
        return 1;
    vals[var] = -1;
    if (dpll(s, vals))
        return 1;
    vals[var] = 0;
    return 0;
}

const char *ipasir_signature(void) { return "dpll-stub-1.0"; }

void *ipasir_init(void) {
    Stub *s = (Stub *)calloc(1, sizeof(Stub));
    return s;
}

void ipasir_release(void *solver) {
    Stub *s = (Stub *)solver;
    free(s->lits);
    free(s->assumps);
    free(s->values);
    free(s);
}

void ipasir_add(void *solver, int lit) {
    Stub *s = (Stub *)solver;
    int var = lit > 0 ? lit : -lit;
    if (var > s->maxvar)
        s->maxvar = var;
    push_lit(s, lit);
}

void ipasir_assume(void *solver, int lit) {
    Stub *s = (Stub *)solver;
    int var = lit > 0 ? lit : -lit;
    if (var > s->maxvar)
        s->maxvar = var;
    if (s->assumps_stale) {
        /* assumptions are one-shot: the previous solve's set (kept alive
         * for ipasir_failed) is discarded as soon as a new one starts */
        s->nassumps = 0;
        s->assumps_stale = 0;
    }
    if (s->nassumps == s->acap) {
        s->acap = s->acap ? s->acap * 2 : 16;
        s->assumps = (int *)realloc(s->assumps, s->acap * sizeof(int));
    }
    s->assumps[s->nassumps++] = lit;
}

int ipasir_solve(void *solver) {
    Stub *s = (Stub *)solver;
    if (s->assumps_stale) {
        s->nassumps = 0; /* no new assumptions since the last solve */
        s->assumps_stale = 0;
    }
    free(s->values);
    s->values = (signed char *)calloc((size_t)s->maxvar + 1, 1);
    int conflict = 0;
    for (size_t i = 0; i < s->nassumps; i++) {
        int lit = s->assumps[i];
        int var = lit > 0 ? lit : -lit;
        signed char want = lit > 0 ? 1 : -1;
        if (s->values[var] && s->values[var] != want) {
            conflict = 1;
            break;
        }
        s->values[var] = want;
    }
    int sat = !conflict && dpll(s, s->values);
    s->last_result = sat ? 10 : 20;
    s->assumps_stale = 1;
    if (!sat) {
        memset(s->values, 0, (size_t)s->maxvar + 1);
        return 20;
    }
    return 10;
}

int ipasir_val(void *solver, int lit) {
    Stub *s = (Stub *)solver;
    int var = lit > 0 ? lit : -lit;
    if (s->last_result != 10 || var > s->maxvar || !s->values[var])
        return lit > 0 ? -lit : lit; /* unassigned: report false */
    int positive = s->values[var] > 0;
    if ((lit > 0) == positive)
        return lit;
    return -lit;
}

int ipasir_failed(void *solver, int lit) {
    Stub *s = (Stub *)solver;
    if (s->last_result != 20)
        return 0;
    for (size_t i = 0; i < s->nassumps; i++)
        if (s->assumps[i] == lit)
            return 1;
    return 0;
}
