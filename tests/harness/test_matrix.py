"""Tests for the parallel check-matrix orchestrator."""

import json

import pytest

from repro.core.checker import CheckOptions
from repro.harness.matrix import (
    CATALOG_KIND,
    CRASH_ENV,
    INTERRUPT_ENV,
    LITMUS_KIND,
    CellResult,
    MatrixCell,
    catalog_cells,
    default_jobs,
    litmus_cells,
    run_matrix,
    shard_cells,
)
from repro.harness.runner import catalog_matrix, model_sweep


def _verdicts(matrix):
    return [(r.cell.key, r.verdict) for r in matrix.results]


class TestCells:
    def test_catalog_cells_enumerate_cross_product(self):
        cells = catalog_cells(["msn"], models=["sc", "relaxed"], tests=["T0", "Ti2"])
        assert len(cells) == 4
        assert cells[0] == MatrixCell("msn", "T0", "sc")
        assert all(cell.kind == CATALOG_KIND for cell in cells)

    def test_catalog_cells_default_to_size_class(self):
        cells = catalog_cells(["msn", "lazylist"], models=["relaxed"], size="small")
        tests_by_impl = {}
        for cell in cells:
            tests_by_impl.setdefault(cell.implementation, []).append(cell.test)
        assert tests_by_impl["msn"] == ["T0", "Ti2", "Tpc2"]
        assert tests_by_impl["lazylist"] == ["Sac", "Sar", "Saa"]

    def test_litmus_cells_skip_shapes_without_observation(self):
        cells = litmus_cells(["sc"])
        names = {cell.test for cell in cells}
        assert "store-buffering" in names
        assert "iriw-fenced" not in names  # no observation of interest
        assert all(cell.kind == LITMUS_KIND for cell in cells)

    def test_cell_key(self):
        assert MatrixCell("msn", "T0", "sc").key == "msn/T0@sc"


class TestSharding:
    def test_shard_by_test_groups_compiled_test_key(self):
        cells = catalog_cells(
            ["msn", "ms2"], models=["sc", "tso", "relaxed"], tests=["T0"]
        )
        shards = shard_cells(cells, "test")
        assert len(shards) == 2  # (msn, T0) and (ms2, T0)
        assert all(len(shard.cells) == 3 for shard in shards)

    def test_shard_by_model_and_impl(self):
        cells = catalog_cells(["msn", "ms2"], models=["sc", "tso"], tests=["T0"])
        assert len(shard_cells(cells, "model")) == 2
        assert len(shard_cells(cells, "impl")) == 2

    def test_shards_preserve_cell_positions(self):
        cells = catalog_cells(["msn"], models=["sc", "tso"], tests=["T0", "Ti2"])
        shards = shard_cells(cells, "test")
        positions = sorted(
            position for shard in shards for position, _ in shard.cells
        )
        assert positions == list(range(len(cells)))

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError):
            shard_cells([MatrixCell("msn", "T0", "sc")], "solver")


class TestDefaultJobs:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("CHECKFENCE_JOBS", raising=False)
        assert default_jobs() == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("CHECKFENCE_JOBS", "3")
        assert default_jobs() == 3

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("CHECKFENCE_JOBS", "many")
        with pytest.raises(ValueError):
            default_jobs()


class TestLitmusMatrix:
    def test_parallel_results_identical_to_serial(self):
        """The acceptance bar: jobs=N produces the same verdicts, in the
        same cell order, as the deterministic serial path."""
        cells = litmus_cells(["sc", "tso", "pso", "relaxed"])
        serial = run_matrix(cells, jobs=1)
        parallel = run_matrix(cells, jobs=4)
        assert _verdicts(serial) == _verdicts(parallel)
        assert serial.jobs == 1
        assert parallel.jobs > 1
        assert parallel.shard_count == serial.shard_count
        # Every parallel cell came from a worker process (the serial path
        # leaves worker == -1).  Which worker got which shard is timing-
        # dependent, so no assertion on worker diversity.
        assert all(r.worker >= 0 for r in parallel.results)
        assert all(r.worker == -1 for r in serial.results)

    def test_known_litmus_verdicts(self):
        matrix = run_matrix(litmus_cells(["sc"]), jobs=2)
        by_name = {r.cell.test: r.verdict for r in matrix.results}
        assert by_name["store-buffering"] == "forbidden"
        assert matrix.ok  # litmus cells never "fail"


class TestCatalogMatrix:
    def test_serial_matches_parallel_on_catalog_cells(self):
        cells = catalog_cells(["msn"], models=["sc", "relaxed"], tests=["T0"])
        serial = run_matrix(cells, jobs=1)
        parallel = run_matrix(cells, jobs=2, shard_by="model")
        assert _verdicts(serial) == _verdicts(parallel)
        for left, right in zip(serial.results, parallel.results):
            assert left.stats["cnf_clauses"] == right.stats["cnf_clauses"]
            assert (
                left.stats["observation_set_size"]
                == right.stats["observation_set_size"]
            )
            # The CheckResult crosses the process boundary, minus the
            # mined observation set (blanked to keep the queue light).
            assert right.result is not None
            assert right.result.specification is None
            assert left.result.specification is not None

    def test_shard_batching_reuses_compilation_and_mining(self):
        """Inside one shard (the compiled-test key), the test is compiled
        once and its specification mined once however many models run."""
        cells = catalog_cells(["msn"], models=["sc", "tso", "relaxed"], tests=["T0"])
        matrix = run_matrix(cells, jobs=1, shard_by="test")
        assert matrix.shard_count == 1
        cache = matrix.cache_totals()
        assert cache["compile"] == 1
        assert cache["mine"] == 1
        assert cache["encode"] == 3  # one encoding per memory model

    def test_failing_cell_reported(self):
        cells = catalog_cells(["msn-unfenced"], models=["relaxed"], tests=["T0"])
        matrix = run_matrix(cells, jobs=1)
        assert not matrix.ok
        (result,) = matrix.results
        assert result.verdict == "FAIL"
        assert result.counterexample
        assert not result.error

    def test_unknown_implementation_is_soft_error(self):
        cells = [
            MatrixCell("no-such-impl", "T0", "sc"),
            MatrixCell("msn", "T0", "sc"),
        ]
        matrix = run_matrix(cells, jobs=1)
        bad, good = matrix.results
        assert bad.verdict == "ERROR" and "KeyError" in bad.error
        assert good.verdict == "PASS"
        assert not matrix.ok

    def test_catalog_matrix_defaults(self):
        matrix = catalog_matrix(["msn"], memory_models=["sc"], tests=["T0"])
        assert len(matrix.results) == 1
        assert matrix.ok

    def test_as_dict_is_json_safe(self):
        cells = catalog_cells(["msn"], models=["sc"], tests=["T0"])
        matrix = run_matrix(cells, jobs=1)
        payload = json.loads(json.dumps(matrix.as_dict()))
        assert payload["cells"][0]["verdict"] == "PASS"
        assert payload["cache"]["mine"] == 1


class TestWorkerCrash:
    def test_crashed_worker_reports_failed_cell_instead_of_hanging(
        self, monkeypatch
    ):
        cells = litmus_cells(["relaxed"])
        victim = cells[2]
        monkeypatch.setenv(CRASH_ENV, victim.key)
        matrix = run_matrix(cells, jobs=2)
        assert not matrix.ok
        by_key = {r.cell.key: r for r in matrix.results}
        crashed = by_key[victim.key]
        # The legacy env crashes every attempt, so the cell exhausts its
        # retries and is quarantined with the first-class CRASHED verdict
        # (not ERROR: the harness ran fine, the worker died).
        assert crashed.verdict == "CRASHED"
        assert "crashed" in crashed.error
        assert crashed in matrix.degraded
        # The surviving worker still finished every other shard.
        healthy = [r for r in matrix.results if r.cell.key != victim.key]
        assert all(not r.error and not r.degraded for r in healthy)

    def test_all_workers_crashing_still_terminates(self, monkeypatch):
        """When every worker dies, remaining shards are reported as lost
        instead of the run hanging on a queue that will never fill."""
        cells = litmus_cells(["sc", "tso", "pso", "relaxed"])
        monkeypatch.setenv(CRASH_ENV, ",".join(cell.key for cell in cells))
        matrix = run_matrix(cells, jobs=2)
        assert not matrix.ok
        assert len(matrix.degraded) == len(cells)
        assert all(r.degraded == "CRASHED" for r in matrix.degraded)
        assert all("crashed" in r.error or "no live workers" in r.error
                   or "lost in transit" in r.error
                   for r in matrix.degraded)


class TestInterrupt:
    """Ctrl-C during a matrix run must tear the pool down, not orphan it.

    The INTERRUPT_ENV hook raises KeyboardInterrupt in the parent the
    moment the chosen cell's result is recorded — the deterministic stand-
    in for a user interrupt mid-run.
    """

    def test_parallel_interrupt_terminates_workers(self, monkeypatch):
        import multiprocessing

        cells = litmus_cells(["sc", "relaxed"])
        monkeypatch.setenv(INTERRUPT_ENV, cells[1].key)
        before = {id(p) for p in multiprocessing.active_children()}
        with pytest.raises(KeyboardInterrupt):
            run_matrix(cells, jobs=2)
        spawned = [
            p for p in multiprocessing.active_children()
            if id(p) not in before
        ]
        for process in spawned:
            process.join(timeout=10)
        assert not any(p.is_alive() for p in spawned), (
            "matrix pool left live workers behind after an interrupt"
        )

    def test_serial_interrupt_propagates(self, monkeypatch):
        cells = litmus_cells(["sc"])
        monkeypatch.setenv(INTERRUPT_ENV, cells[0].key)
        with pytest.raises(KeyboardInterrupt):
            run_matrix(cells, jobs=1)

    def test_cli_maps_interrupt_to_exit_130(self, monkeypatch, capsys):
        from repro.cli import main
        from repro.fuzz.generator import generate_corpus

        spec = generate_corpus(seed=5, budget=1)[0].spec()
        monkeypatch.setenv(INTERRUPT_ENV, f"fuzz/{spec}@sc")
        code = main([
            "fuzz", "--budget", "1", "--seed", "5", "--models", "sc",
            "--jobs", "1", "--quiet",
        ])
        assert code == 130
        assert "interrupted" in capsys.readouterr().err


class TestModelSweepViaMatrix:
    def test_model_sweep_returns_full_check_results(self):
        results = model_sweep("msn", "T0", ["sc", "relaxed"])
        assert [r.memory_model for r in results] == ["sc", "relaxed"]
        assert all(r.passed for r in results)
        # Same session across models: one shared specification object.
        assert len({id(r.specification) for r in results}) == 1

    def test_model_sweep_surfaces_errors(self):
        with pytest.raises(RuntimeError, match="no-such-impl"):
            model_sweep("no-such-impl", "T0", ["sc"])


class TestCliMatrix:
    def test_matrix_command(self, capsys):
        from repro.cli import main

        code = main([
            "matrix", "--impls", "msn", "--tests", "T0",
            "--models", "sc,relaxed", "--jobs", "2", "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "2 cells" in out

    def test_matrix_command_failure_exit_code(self, capsys):
        from repro.cli import main

        code = main([
            "matrix", "--impls", "msn-unfenced", "--tests", "T0",
            "--models", "relaxed", "--quiet",
        ])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_matrix_json_stdout(self, capsys):
        from repro.cli import main

        code = main([
            "matrix", "--litmus", "--models", "sc", "--jobs", "2",
            "--quiet", "--json", "-",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert len(payload["cells"]) == 6

    def test_litmus_command_with_jobs(self, capsys):
        from repro.cli import main

        assert main(["litmus", "--model", "sc", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "store-buffering" in out and "forbidden" in out
