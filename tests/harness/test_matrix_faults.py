"""Fault-tolerance tests for the matrix orchestrator.

These exercise the CHECKFENCE_FAULT injection framework end-to-end:
crashed workers whose shards are retried (and must be verdict-identical
to a clean run), hung workers reaped by the watchdog, per-cell deadline
expiry surfacing as TIMEOUT, and the journal/--resume path.

The suite runs on small litmus matrices to stay fast; timing-dependent
assertions are kept generous because CI may be a single loaded core.
"""

import json
import multiprocessing

import pytest

from repro.core import faults, limits
from repro.harness.matrix import (
    JournalError,
    WORKER_TIMEOUT_ENV,
    litmus_cells,
    run_matrix,
)

FAULT_ENV = faults.FAULT_ENV


def _verdicts(matrix):
    return [(r.cell.key, r.verdict) for r in matrix.results]


def _spawned_since(before):
    return [
        p for p in multiprocessing.active_children() if id(p) not in before
    ]


class TestCrashRetry:
    def test_crashed_shard_is_retried_verdict_identically(self, monkeypatch):
        """A worker-crash fault bounded to attempt 1: the parent re-queues
        the shard, the retry succeeds, and the final matrix is
        indistinguishable from a clean run."""
        cells = litmus_cells(["sc", "relaxed"])
        clean = run_matrix(cells, jobs=2)
        monkeypatch.setenv(FAULT_ENV, f"worker-crash:{cells[3].key}")
        faulty = run_matrix(cells, jobs=2)
        assert _verdicts(faulty) == _verdicts(clean)
        assert faulty.ok
        assert not faulty.degraded
        assert all(not r.error for r in faulty.results)

    def test_multiple_crash_faults_all_recover(self, monkeypatch):
        cells = litmus_cells(["sc", "tso"])
        clean = run_matrix(cells, jobs=2)
        directives = ",".join(
            f"worker-crash:{cell.key}" for cell in (cells[0], cells[-1])
        )
        monkeypatch.setenv(FAULT_ENV, directives)
        faulty = run_matrix(cells, jobs=2)
        assert _verdicts(faulty) == _verdicts(clean)
        assert faulty.ok

    def test_crash_every_attempt_quarantines_as_crashed(self, monkeypatch):
        cells = litmus_cells(["sc"])
        victim = cells[1]
        monkeypatch.setenv(FAULT_ENV, f"worker-crash:{victim.key}:99")
        matrix = run_matrix(cells, jobs=2)
        by_key = {r.cell.key: r for r in matrix.results}
        assert by_key[victim.key].verdict == limits.CRASHED
        assert "giving up after" in by_key[victim.key].error
        assert not matrix.ok
        healthy = [r for r in matrix.results if r.cell.key != victim.key]
        assert all(not r.degraded and not r.error for r in healthy)


class TestHangWatchdog:
    def test_hung_worker_is_killed_retried_and_not_leaked(self, monkeypatch):
        """A worker that ignores SIGTERM and sleeps on its shard: the
        watchdog reaps it (terminate → kill escalation), the shard is
        retried, and no process outlives the run."""
        cells = litmus_cells(["sc", "relaxed"])
        clean = run_matrix(cells, jobs=2)
        monkeypatch.setenv(FAULT_ENV, f"worker-hang:{cells[0].key}")
        monkeypatch.setenv(WORKER_TIMEOUT_ENV, "3.0")
        before = {id(p) for p in multiprocessing.active_children()}
        matrix = run_matrix(cells, jobs=2)
        assert _verdicts(matrix) == _verdicts(clean)
        assert matrix.ok
        for process in _spawned_since(before):
            process.join(timeout=10)
        assert not any(p.is_alive() for p in _spawned_since(before)), (
            "matrix pool leaked a live worker after a hang injection"
        )


class TestCellTimeout:
    def test_cell_timeout_fault_degrades_to_timeout_verdict(self, monkeypatch):
        cells = litmus_cells(["sc"])
        victim = cells[0]
        monkeypatch.setenv(FAULT_ENV, f"cell-timeout:{victim.key}")
        matrix = run_matrix(cells, jobs=1)
        by_key = {r.cell.key: r for r in matrix.results}
        timed_out = by_key[victim.key]
        assert timed_out.verdict == limits.TIMEOUT
        assert timed_out.degraded == limits.TIMEOUT
        assert not timed_out.ok
        # TIMEOUT is degraded, not an error: matrix.errors must not list
        # it, matrix.degraded must, and the summary must name it.
        assert timed_out not in matrix.errors
        assert timed_out in matrix.degraded
        assert "TIMEOUT" in matrix.summary()
        assert not matrix.ok
        healthy = [r for r in matrix.results if r.cell.key != victim.key]
        assert all(r.ok for r in healthy)

    def test_cell_timeout_fault_works_in_parallel_mode(self, monkeypatch):
        cells = litmus_cells(["sc", "tso"])
        victim = cells[-1]
        monkeypatch.setenv(FAULT_ENV, f"cell-timeout:{victim.key}")
        matrix = run_matrix(cells, jobs=2)
        by_key = {r.cell.key: r for r in matrix.results}
        assert by_key[victim.key].verdict == limits.TIMEOUT
        assert len(matrix.degraded) == 1

    def test_degraded_cells_round_trip_through_json(self, monkeypatch):
        cells = litmus_cells(["sc"])
        monkeypatch.setenv(FAULT_ENV, f"cell-timeout:{cells[0].key}")
        matrix = run_matrix(cells, jobs=1)
        payload = json.loads(json.dumps(matrix.as_dict()))
        assert payload["ok"] is False
        assert payload["cells"][0]["verdict"] == "TIMEOUT"
        assert payload["cells"][0]["degraded"] == "TIMEOUT"


class TestJournalResume:
    def test_journal_records_every_cell(self, tmp_path):
        cells = litmus_cells(["sc"])
        journal = tmp_path / "run.jsonl"
        matrix = run_matrix(cells, jobs=1, journal=str(journal))
        lines = journal.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["journal"] == 1
        assert header["cells"] == len(cells)
        entries = [json.loads(line) for line in lines[1:]]
        assert {e["key"] for e in entries} == {c.key for c in cells}
        assert matrix.ok

    def test_resume_skips_finished_cells_verdict_identically(self, tmp_path):
        cells = litmus_cells(["sc", "tso"])
        journal = tmp_path / "run.jsonl"
        clean = run_matrix(cells, jobs=1, journal=str(journal))
        # Simulate a run that died partway: keep the header and the first
        # three completed cells, drop the rest.
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:4]) + "\n")
        resumed = run_matrix(
            cells, jobs=1, journal=str(journal), resume=True
        )
        assert _verdicts(resumed) == _verdicts(clean)
        assert len(resumed.resumed) == 3
        fresh = [r for r in resumed.results if not r.stats.get("resumed")]
        assert len(fresh) == len(cells) - 3
        assert "resumed from journal" in resumed.summary()
        # The journal is now complete again: a second resume re-runs
        # nothing.
        rerun = run_matrix(cells, jobs=1, journal=str(journal), resume=True)
        assert len(rerun.resumed) == len(cells)
        assert _verdicts(rerun) == _verdicts(clean)

    def test_resume_works_in_parallel_mode(self, tmp_path):
        cells = litmus_cells(["sc", "relaxed"])
        journal = tmp_path / "run.jsonl"
        clean = run_matrix(cells, jobs=1, journal=str(journal))
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:3]) + "\n")
        resumed = run_matrix(
            cells, jobs=2, journal=str(journal), resume=True
        )
        assert _verdicts(resumed) == _verdicts(clean)
        assert len(resumed.resumed) == 2

    def test_interrupted_run_resumes_to_clean_verdicts(
        self, tmp_path, monkeypatch
    ):
        """The acceptance path: a run dies mid-matrix (injected Ctrl-C),
        the journal holds the finished prefix, and --resume completes the
        rest with verdicts identical to an uninterrupted run."""
        cells = litmus_cells(["sc", "tso"])
        clean = run_matrix(cells, jobs=1)
        journal = tmp_path / "run.jsonl"
        monkeypatch.setenv(FAULT_ENV, f"interrupt:{cells[4].key}")
        with pytest.raises(KeyboardInterrupt):
            run_matrix(cells, jobs=1, journal=str(journal))
        monkeypatch.delenv(FAULT_ENV)
        resumed = run_matrix(
            cells, jobs=1, journal=str(journal), resume=True
        )
        assert _verdicts(resumed) == _verdicts(clean)
        assert resumed.resumed  # at least the pre-interrupt cells restored
        assert len(resumed.resumed) < len(cells)

    def test_degraded_verdicts_are_never_treated_as_finished(
        self, tmp_path, monkeypatch
    ):
        """A TIMEOUT in the journal must be re-run on resume (budgets are
        per-run, the next run may have a better one); same for CRASHED."""
        cells = litmus_cells(["sc"])
        victim = cells[2]
        journal = tmp_path / "run.jsonl"
        monkeypatch.setenv(FAULT_ENV, f"cell-timeout:{victim.key}")
        first = run_matrix(cells, jobs=1, journal=str(journal))
        assert first.degraded
        monkeypatch.delenv(FAULT_ENV)
        resumed = run_matrix(
            cells, jobs=1, journal=str(journal), resume=True
        )
        by_key = {r.cell.key: r for r in resumed.results}
        assert by_key[victim.key].verdict not in limits.DEGRADED_VERDICTS
        assert not by_key[victim.key].stats.get("resumed")
        assert len(resumed.resumed) == len(cells) - 1

    def test_journal_for_different_cell_set_is_rejected(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        run_matrix(litmus_cells(["sc"]), jobs=1, journal=str(journal))
        with pytest.raises(JournalError, match="different cell set"):
            run_matrix(
                litmus_cells(["tso"]), jobs=1, journal=str(journal),
                resume=True,
            )

    def test_garbage_journal_is_rejected(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        journal.write_text("this is not json\n")
        with pytest.raises(JournalError, match="unparseable header"):
            run_matrix(
                litmus_cells(["sc"]), jobs=1, journal=str(journal),
                resume=True,
            )

    def test_torn_tail_line_is_tolerated(self, tmp_path):
        cells = litmus_cells(["sc"])
        journal = tmp_path / "run.jsonl"
        clean = run_matrix(cells, jobs=1, journal=str(journal))
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"position": 0, "key": "trunc')  # writer died here
        resumed = run_matrix(
            cells, jobs=1, journal=str(journal), resume=True
        )
        assert _verdicts(resumed) == _verdicts(clean)

    def test_without_resume_existing_journal_is_overwritten(self, tmp_path):
        cells = litmus_cells(["sc"])
        journal = tmp_path / "run.jsonl"
        run_matrix(cells, jobs=1, journal=str(journal))
        first_size = journal.stat().st_size
        run_matrix(cells, jobs=1, journal=str(journal))
        # Rewritten from scratch, not appended.
        assert journal.stat().st_size == pytest.approx(first_size, rel=0.2)
        lines = journal.read_text().splitlines()
        assert json.loads(lines[0])["journal"] == 1
        assert len(lines) == 1 + len(cells)


class TestAcceptanceScenario:
    def test_crash_plus_timeout_run_completes_and_matches_clean(
        self, tmp_path, monkeypatch
    ):
        """ISSUE acceptance: one matrix run with an injected worker crash
        AND a deadline-expired cell completes without hanging; the crashed
        cell's retry is verdict-identical to a clean run; the timed-out
        cell is TIMEOUT (not FAIL)."""
        cells = litmus_cells(["sc", "relaxed"])
        clean = run_matrix(cells, jobs=2)
        crash_victim, timeout_victim = cells[1], cells[-2]
        monkeypatch.setenv(
            FAULT_ENV,
            f"worker-crash:{crash_victim.key},"
            f"cell-timeout:{timeout_victim.key}",
        )
        matrix = run_matrix(cells, jobs=2)
        by_key = {r.cell.key: r for r in matrix.results}
        clean_by_key = {r.cell.key: r for r in clean.results}
        assert (
            by_key[crash_victim.key].verdict
            == clean_by_key[crash_victim.key].verdict
        )
        assert by_key[timeout_victim.key].verdict == limits.TIMEOUT
        assert by_key[timeout_victim.key].verdict != "FAIL"
        for cell in cells:
            if cell.key == timeout_victim.key:
                continue
            assert by_key[cell.key].verdict == clean_by_key[cell.key].verdict
        assert len(matrix.degraded) == 1
