"""Tests for the Fig. 8 test catalog, the experiment runner, and reporting."""

import pytest

from repro.harness import (
    ascii_scatter,
    breakdown,
    check_catalog_test,
    fence_experiment,
    format_seconds,
    format_table,
    get_test,
    inclusion_row,
    method_comparison,
    mining_point,
    operation_count,
    range_analysis_comparison,
)
from repro.harness import test_names as catalog_test_names
from repro.harness.catalog import DEQUE_TESTS, QUEUE_TESTS, SET_TESTS


class TestCatalog:
    def test_all_fig8_queue_tests_present(self):
        expected = {"T0", "T1", "Tpc2", "Tpc3", "Tpc4", "Tpc5", "Tpc6",
                    "Ti2", "Ti3", "T53", "T54", "T55", "T56"}
        assert expected <= set(QUEUE_TESTS)

    def test_all_fig8_set_tests_present(self):
        expected = {"Sac", "Sar", "Sacr", "Saacr", "Sacr2", "Saaarr", "S1", "Sarr"}
        assert expected <= set(SET_TESTS)

    def test_all_fig8_deque_tests_present(self):
        assert {"D0", "Da", "Db", "Dm", "Dq"} <= set(DEQUE_TESTS)

    def test_t0_structure(self):
        test = get_test("queue", "T0")
        assert test.num_threads == 2
        assert [inv.operation for inv in test.threads[0]] == ["enqueue"]
        assert [inv.operation for inv in test.threads[1]] == ["dequeue"]
        assert test.init[0].operation == "init"
        assert operation_count(test) == 2

    def test_init_sequences(self):
        ti2 = get_test("queue", "Ti2")
        assert [inv.operation for inv in ti2.init] == ["init", "enqueue"]
        saacr = get_test("set", "Saacr")
        assert [inv.operation for inv in saacr.init] == ["init", "add"]

    def test_primed_operations_accepted(self):
        s1 = get_test("set", "S1")
        assert s1.num_threads == 6
        dq = get_test("deque", "Dq")
        assert dq.num_threads == 8

    def test_deque_tokens(self):
        d0 = get_test("deque", "D0")
        assert [inv.operation for inv in d0.threads[0]] == [
            "add_left", "remove_right",
        ]
        assert [inv.operation for inv in d0.threads[1]] == [
            "add_right", "remove_left",
        ]

    def test_arguments_are_symbolic(self):
        test = get_test("queue", "T0")
        enqueue = test.threads[0][0]
        assert enqueue.args == (None,)
        dequeue = test.threads[1][0]
        assert dequeue.args == ()

    def test_unknown_names_rejected(self):
        with pytest.raises(KeyError):
            get_test("queue", "T99")
        with pytest.raises(KeyError):
            get_test("stack", "T0")

    def test_size_classes_cover_catalog(self):
        for category, table in [("queue", QUEUE_TESTS), ("set", SET_TESTS),
                                ("deque", DEQUE_TESTS)]:
            sized = (
                set(catalog_test_names(category, "small"))
                | set(catalog_test_names(category, "medium"))
                | set(catalog_test_names(category, "large"))
            )
            assert sized == set(table)

    def test_display(self):
        assert "|" in get_test("queue", "T1").display()


class TestRunner:
    def test_inclusion_row_fields(self):
        row = inclusion_row("msn", "T0", "relaxed")
        assert row.loads > 0 and row.stores > 0
        assert row.cnf_clauses > 0
        assert row.passed
        assert row.total_seconds > 0
        assert set(row.as_dict()) >= {"implementation", "test", "cnf_clauses"}

    def test_fence_experiment_reproduces_section_42(self):
        outcome = fence_experiment("msn", "T0")
        assert outcome.fenced_passes_relaxed
        assert outcome.unfenced_fails_relaxed
        assert outcome.unfenced_passes_sc
        assert outcome.reproduces_paper
        assert outcome.counterexample

    def test_mining_point_both_methods(self):
        reference = mining_point("msn", "T0", "reference")
        sat = mining_point("msn", "T0", "sat")
        assert reference.observation_set_size == sat.observation_set_size == 4
        assert reference.mining_seconds >= 0
        assert sat.mining_seconds > 0

    def test_breakdown_shares_sum_to_one(self):
        shares = breakdown("msn", "T0", "relaxed").shares()
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        assert set(shares) == {
            "specification mining",
            "encoding of inclusion test",
            "refutation of inclusion test",
        }

    def test_range_analysis_comparison(self):
        comparison = range_analysis_comparison("msn", "T0")
        assert comparison.with_clauses < comparison.without_clauses
        assert comparison.speedup > 0

    def test_method_comparison_agrees(self):
        comparison = method_comparison("msn", "T0")
        assert comparison.both_agree
        assert comparison.observation_set_seconds > 0
        assert comparison.commit_point_seconds > 0

    def test_check_catalog_test_failure_path(self):
        result = check_catalog_test("msn-unfenced", "T0", "relaxed")
        assert result.failed


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["a", "bbb"], [[1, 2], ["xxxx", "y"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_seconds(self):
        assert format_seconds(0.01).endswith("ms")
        assert format_seconds(2.5) == "2.50s"

    def test_ascii_scatter(self):
        points = [(1, 0.1, "a"), (10, 1.0, "b"), (100, 10.0, "c")]
        plot = ascii_scatter(points, x_label="accesses", y_label="seconds")
        assert "accesses" in plot and "seconds" in plot
        assert "a" in plot and "c" in plot

    def test_ascii_scatter_empty(self):
        assert "no data" in ascii_scatter([])
