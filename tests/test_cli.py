"""Tests for the command line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "msn" in out and "lazylist" in out
        assert "relaxed" in out
        assert "T0" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Two-lock queue" in out and "snark" in out

    def test_check_pass(self, capsys):
        code = main(["check", "--impl", "msn", "--test", "T0", "--model", "relaxed"])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_check_fail_returns_nonzero(self, capsys):
        code = main([
            "check", "--impl", "msn-unfenced", "--test", "T0", "--model", "relaxed",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "counterexample" in out

    def test_spec(self, capsys):
        assert main(["spec", "--impl", "msn", "--test", "T0"]) == 0
        out = capsys.readouterr().out
        assert "4 observations" in out

    def test_litmus(self, capsys):
        assert main(["litmus", "--model", "sc"]) == 0
        out = capsys.readouterr().out
        assert "store-buffering" in out
        assert "forbidden" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_sweep(self, capsys):
        code = main([
            "sweep", "--impl", "msn", "--test", "T0",
            "--models", "sc,relaxed",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "compiled 1x" in out and "spec mined 1x" in out
        assert "sc" in out and "relaxed" in out

    def test_sweep_fail_returns_nonzero(self, capsys):
        code = main([
            "sweep", "--impl", "msn-unfenced", "--test", "T0",
            "--models", "sc,relaxed",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out

    def test_check_with_solver_flag(self, capsys):
        code = main([
            "check", "--impl", "msn", "--test", "T0",
            "--model", "sc", "--solver", "internal",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "solver: internal" in out
