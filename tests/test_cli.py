"""Tests for the command line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "msn" in out and "lazylist" in out
        assert "relaxed" in out
        assert "T0" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Two-lock queue" in out and "snark" in out

    def test_check_pass(self, capsys):
        code = main(["check", "--impl", "msn", "--test", "T0", "--model", "relaxed"])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_check_fail_returns_nonzero(self, capsys):
        code = main([
            "check", "--impl", "msn-unfenced", "--test", "T0", "--model", "relaxed",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "counterexample" in out

    def test_spec(self, capsys):
        assert main(["spec", "--impl", "msn", "--test", "T0"]) == 0
        out = capsys.readouterr().out
        assert "4 observations" in out

    def test_litmus(self, capsys):
        assert main(["litmus", "--model", "sc"]) == 0
        out = capsys.readouterr().out
        assert "store-buffering" in out
        assert "forbidden" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_sweep(self, capsys):
        code = main([
            "sweep", "--impl", "msn", "--test", "T0",
            "--models", "sc,relaxed",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "compiled 1x" in out and "spec mined 1x" in out
        assert "sc" in out and "relaxed" in out

    def test_sweep_fail_returns_nonzero(self, capsys):
        code = main([
            "sweep", "--impl", "msn-unfenced", "--test", "T0",
            "--models", "sc,relaxed",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out

    def test_check_with_solver_flag(self, capsys):
        code = main([
            "check", "--impl", "msn", "--test", "T0",
            "--model", "sc", "--solver", "internal",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "solver: internal" in out


class TestOracleCommand:
    def test_litmus_agreement(self, capsys):
        code = main(["oracle", "--litmus", "store-buffering", "--model", "tso"])
        assert code == 0
        out = capsys.readouterr().out
        assert "agree on 4 outcomes" in out
        assert "[both]" in out

    def test_spec_agreement(self, capsys):
        code = main(["oracle", "--spec", "x=1 r0=y | y=1 r1=x",
                     "--model", "sc"])
        assert code == 0
        out = capsys.readouterr().out
        assert "agree on 3 outcomes" in out

    def test_requires_exactly_one_input(self, capsys):
        assert main(["oracle", "--model", "sc"]) == 2
        assert main([
            "oracle", "--litmus", "store-buffering", "--spec", "x=1",
        ]) == 2

    def test_unknown_litmus_name(self, capsys):
        assert main(["oracle", "--litmus", "nope"]) == 2
        assert "unknown litmus test" in capsys.readouterr().err

    def test_malformed_spec_is_a_clean_error(self, capsys):
        assert main(["oracle", "--spec", "garbage", "--model", "sc"]) == 2
        assert "cannot parse" in capsys.readouterr().err


class TestFuzzCommand:
    def test_small_campaign(self, capsys):
        code = main([
            "fuzz", "--budget", "5", "--seed", "11",
            "--models", "sc,relaxed", "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "5 programs x 2 models = 10 cells" in out
        assert "0 divergences" in out

    def test_json_output(self, tmp_path, capsys):
        target = tmp_path / "fuzz.json"
        code = main([
            "fuzz", "--budget", "3", "--seed", "2", "--models", "sc",
            "--quiet", "--json", str(target),
        ])
        assert code == 0
        import json as json_module

        payload = json_module.loads(target.read_text())
        assert payload["ok"] is True
        assert payload["programs"] == 3
        assert payload["cells"] == 3
        assert payload["seed"] == 2
        assert payload["programs_per_second"] > 0

    def test_no_cells_is_an_error_not_a_vacuous_pass(self, capsys):
        assert main(["fuzz", "--models", ",", "--budget", "5",
                     "--quiet"]) == 2
        assert "no cells selected" in capsys.readouterr().err
        assert main(["fuzz", "--budget", "0", "--quiet"]) == 2

    def test_json_stdout_is_pure(self, capsys):
        # `--json - | jq` must work: the human summary goes to stderr.
        code = main([
            "fuzz", "--budget", "2", "--seed", "3", "--models", "sc",
            "--quiet", "--json", "-",
        ])
        assert code == 0
        captured = capsys.readouterr()
        import json as json_module

        payload = json_module.loads(captured.out)
        assert payload["programs"] == 2
        assert "fuzz:" in captured.err

    def test_max_knobs_below_defaults_are_honored(self, capsys):
        code = main([
            "fuzz", "--budget", "4", "--seed", "6", "--models", "sc",
            "--max-threads", "1", "--max-ops", "2", "--quiet", "--json", "-",
        ])
        assert code == 0
        import json as json_module

        payload = json_module.loads(capsys.readouterr().out)
        from repro.fuzz import FuzzProgram

        for cell in payload["matrix"]["cells"]:
            program = FuzzProgram.parse(cell["test"])
            assert len(program.threads) == 1
            assert all(len(t) <= 2 for t in program.threads)

    def test_divergence_sets_exit_code(self, capsys, drop_same_address_axiom):
        code = main([
            "fuzz", "--budget", "25", "--seed", "1", "--jobs", "1",
            "--models", "relaxed", "--quiet",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "DIVERGENCE" in out
        assert "replay: checkfence oracle" in out
