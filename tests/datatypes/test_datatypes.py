"""Tests for the data type registry, C sources, and reference implementations."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datatypes import (
    EMPTY,
    ReferenceDeque,
    ReferenceQueue,
    ReferenceSet,
    TABLE1,
    available_implementations,
    base_implementations,
    category_of,
    get_implementation,
)
from repro.lang import compile_c


class TestRegistry:
    def test_table1_lists_five_implementations(self):
        assert [row[0] for row in TABLE1] == ["ms2", "msn", "lazylist", "harris", "snark"]
        assert base_implementations() == ["ms2", "msn", "lazylist", "harris", "snark"]

    def test_every_variant_builds(self):
        for name in available_implementations():
            implementation = get_implementation(name)
            assert implementation.name == name
            assert implementation.operations
            assert implementation.source.strip()

    def test_unknown_implementation(self):
        with pytest.raises(KeyError):
            get_implementation("nope")

    def test_categories(self):
        assert category_of("msn") == "queue"
        assert category_of("msn-unfenced") == "queue"
        assert category_of("lazylist-buggy") == "set"
        assert category_of("snark") == "deque"
        with pytest.raises(KeyError):
            category_of("mystery")

    def test_every_source_compiles_to_lsl(self):
        for name in available_implementations():
            implementation = get_implementation(name)
            program = compile_c(implementation.source, name)
            for spec in implementation.operations.values():
                assert spec.proc in program.procedures, (
                    f"{name}: operation {spec.name} refers to missing "
                    f"function {spec.proc}"
                )

    def test_fenced_and_unfenced_differ(self):
        for base in ("ms2", "msn", "lazylist", "harris", "snark"):
            fenced = get_implementation(base)
            unfenced = get_implementation(f"{base}-unfenced")
            assert fenced.source != unfenced.source
            assert 'fence("' in fenced.source
            assert 'fence("' not in unfenced.source

    def test_operation_lookup(self):
        msn = get_implementation("msn")
        assert msn.operation("enqueue").num_value_args == 1
        assert msn.operation("dequeue").num_out_params == 1
        with pytest.raises(KeyError):
            msn.operation("pop")

    def test_with_source_variant_helper(self):
        msn = get_implementation("msn")
        variant = msn.with_source(msn.source + "\n// tweaked\n", "tweaked")
        assert variant.name == "msn-tweaked"
        assert variant.operations == msn.operations


class TestReferenceQueue:
    def test_fifo_order(self):
        queue = ReferenceQueue()
        queue.init()
        queue.enqueue(1)
        queue.enqueue(0)
        assert queue.dequeue() == (1, 1)
        assert queue.dequeue() == (1, 0)
        assert queue.dequeue() == (0, 0)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 1), max_size=8))
    def test_matches_python_list(self, values):
        queue = ReferenceQueue()
        queue.init()
        for value in values:
            queue.enqueue(value)
        for expected in values:
            assert queue.dequeue() == (1, expected)
        assert queue.dequeue() == (0, 0)


class TestReferenceSet:
    def test_add_remove_contains(self):
        s = ReferenceSet()
        s.init()
        assert s.contains(1) == 0
        assert s.add(1) == 1
        assert s.add(1) == 0
        assert s.contains(1) == 1
        assert s.remove(1) == 1
        assert s.remove(1) == 0
        assert s.contains(1) == 0

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["add", "remove", "contains"]),
                              st.integers(0, 1)), max_size=12))
    def test_matches_python_set(self, operations):
        reference = ReferenceSet()
        reference.init()
        model = set()
        for op, value in operations:
            if op == "add":
                expected = int(value not in model)
                model.add(value)
                assert reference.add(value) == expected
            elif op == "remove":
                expected = int(value in model)
                model.discard(value)
                assert reference.remove(value) == expected
            else:
                assert reference.contains(value) == int(value in model)


class TestReferenceDeque:
    def test_both_ends(self):
        d = ReferenceDeque()
        d.init()
        d.add_left(1)
        d.add_right(0)
        assert d.remove_right() == 0
        assert d.remove_right() == 1
        assert d.remove_right() == EMPTY
        assert d.remove_left() == EMPTY

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(
        ["add_left", "add_right", "remove_left", "remove_right"]),
        st.integers(0, 1)), max_size=12))
    def test_matches_collections_deque(self, operations):
        from collections import deque

        reference = ReferenceDeque()
        reference.init()
        model = deque()
        for op, value in operations:
            if op == "add_left":
                reference.add_left(value)
                model.appendleft(value)
            elif op == "add_right":
                reference.add_right(value)
                model.append(value)
            elif op == "remove_left":
                expected = model.popleft() if model else EMPTY
                assert reference.remove_left() == expected
            else:
                expected = model.pop() if model else EMPTY
                assert reference.remove_right() == expected
