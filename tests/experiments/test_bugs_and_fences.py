"""Experiment tests reproducing the qualitative findings of Section 4.1/4.2.

These are the headline results of the paper:

* every one of the five implementations needs memory ordering fences on the
  Relaxed model (the original algorithms are correct under SC);
* the fenced versions pass;
* the snark deque has a (reintroduced) double-pop bug;
* the lazy list set has a missing-initialization bug that is independent of
  the memory model.

The larger catalog tests are covered by the benchmarks; here we keep to the
small tests so the suite stays fast.
"""

import pytest

from repro.core import check
from repro.datatypes import get_implementation
from repro.harness.bugtests import deque_double_pop_test, lazylist_missing_init_test
from repro.harness.catalog import get_test
from repro.harness.runner import fence_experiment


class TestSection42MissingFences:
    """Unfenced algorithms fail on Relaxed; fenced ones pass; SC is fine."""

    @pytest.mark.parametrize(
        "implementation,test_name",
        [("msn", "T0"), ("ms2", "T0"), ("harris", "Sac")],
    )
    def test_fences_required_and_sufficient(self, implementation, test_name):
        outcome = fence_experiment(implementation, test_name)
        assert outcome.reproduces_paper, (
            f"{implementation}/{test_name}: fenced_relaxed="
            f"{outcome.fenced_passes_relaxed}, unfenced_relaxed_fails="
            f"{outcome.unfenced_fails_relaxed}, unfenced_sc="
            f"{outcome.unfenced_passes_sc}"
        )

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "implementation,test_name",
        [("lazylist", "Sac"), ("snark", "D0")],
    )
    def test_fences_required_and_sufficient_slow(self, implementation, test_name):
        outcome = fence_experiment(implementation, test_name)
        assert outcome.reproduces_paper

    def test_incomplete_initialization_failure_mode(self):
        """Section 4.3: without the store-store fence the reader can observe
        a node before its fields are initialized."""
        result = check(
            get_implementation("msn-unfenced"), get_test("queue", "T0"), "relaxed"
        )
        assert result.failed
        # The counterexample must involve the dequeuer observing a value that
        # was never enqueued (or a success on an effectively empty queue).
        observation = dict(
            zip(result.specification.labels, result.counterexample.observation)
        )
        dequeue_ok = observation["t1.0.dequeue.ret"]
        dequeue_value = observation["t1.0.dequeue.out0"]
        enqueue_arg = observation["t0.0.enqueue.arg0"]
        assert dequeue_ok == 1 and dequeue_value != enqueue_arg

    def test_fenced_queue_also_passes_under_tso_and_pso(self):
        """Section 4.2 notes only load-load and store-store fences are
        needed, so TSO-like machines run the algorithm correctly as well."""
        for model in ("tso", "pso"):
            assert check(
                get_implementation("msn"), get_test("queue", "T0"), model
            ).passed

    def test_unfenced_queue_passes_tso(self):
        """TSO keeps load-load and store-store order, so the unfenced queue
        is correct there (the paper's observation about SPARC TSO/zSeries)."""
        assert check(
            get_implementation("msn-unfenced"), get_test("queue", "T0"), "tso"
        ).passed


class TestSection41Bugs:
    def test_snark_double_pop_bug_found(self):
        """The buggy deque lets both ends pop the same single element."""
        result = check(
            get_implementation("snark-buggy"), deque_double_pop_test(), "sc"
        )
        assert result.failed
        observation = dict(
            zip(result.specification.labels, result.counterexample.observation)
        )
        left = observation["t1.0.remove_left.ret"]
        right = observation["t0.0.remove_right.ret"]
        pushed = observation["init.1.add_left.arg0"]
        assert left == right == pushed

    def test_fixed_deque_passes_the_same_test(self):
        assert check(get_implementation("snark"), deque_double_pop_test(), "sc").passed

    def test_lazylist_missing_initialization_bug_found(self):
        """The published pseudocode forgets to initialize 'marked'; the
        membership test can then miss an element that was never removed.
        The bug is independent of the memory model (it shows under SC)."""
        result = check(
            get_implementation("lazylist-buggy"), lazylist_missing_init_test(), "sc"
        )
        assert result.failed

    def test_fixed_lazylist_passes_the_same_test(self):
        assert check(
            get_implementation("lazylist"), lazylist_missing_init_test(), "sc"
        ).passed
