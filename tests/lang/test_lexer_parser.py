"""Tests for the C-subset lexer and parser."""

import pytest

from repro.lang import LexError, ParseError, parse, tokenize
from repro.lang import ast


class TestLexer:
    def test_keywords_and_identifiers(self):
        tokens = tokenize("int foo while whiledone")
        kinds = [(t.kind, t.text) for t in tokens[:-1]]
        assert kinds == [
            ("keyword", "int"),
            ("ident", "foo"),
            ("keyword", "while"),
            ("ident", "whiledone"),
        ]

    def test_numbers(self):
        tokens = tokenize("0 42 0x1F 7U 100L")
        values = [t.text for t in tokens if t.kind == "number"]
        assert values == ["0", "42", "0x1F", "7U", "100L"]

    def test_operators_maximal_munch(self):
        tokens = tokenize("a->b == c && d != e")
        ops = [t.text for t in tokens if t.kind == "op"]
        assert ops == ["->", "==", "&&", "!="]

    def test_string_literal(self):
        tokens = tokenize('fence("store-store");')
        strings = [t for t in tokens if t.kind == "string"]
        assert len(strings) == 1
        assert strings[0].text == "store-store"

    def test_comments_stripped(self):
        tokens = tokenize("int x; // comment\n/* block\ncomment */ int y;")
        idents = [t.text for t in tokens if t.kind == "ident"]
        assert idents == ["x", "y"]

    def test_preprocessor_lines_skipped(self):
        tokens = tokenize("#include <stdio.h>\nint x;")
        idents = [t.text for t in tokens if t.kind == "ident"]
        assert idents == ["x"]

    def test_line_and_column_tracking(self):
        tokens = tokenize("int\n  foo;")
        foo = [t for t in tokens if t.text == "foo"][0]
        assert foo.location.line == 2
        assert foo.location.column == 3

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("int @x;")

    def test_char_literal(self):
        tokens = tokenize("'A'")
        assert tokens[0].kind == "number"
        assert tokens[0].text == str(ord("A"))


class TestParserDeclarations:
    def test_typedef_struct(self):
        unit = parse(
            """
            typedef struct node {
                struct node *next;
                int value;
            } node_t;
            """
        )
        assert len(unit.structs) == 1
        struct = unit.structs[0]
        assert struct.name == "node_t"
        assert [f.name for f in struct.fields] == ["next", "value"]
        assert struct.fields[0].type.pointer_depth == 1

    def test_typedef_enum(self):
        unit = parse("typedef enum { free, held } lock_t;")
        assert unit.enums[0].enumerators == [("free", 0), ("held", 1)]

    def test_typedef_alias(self):
        unit = parse("typedef unsigned value_t; value_t x;")
        assert unit.typedefs[0].name == "value_t"
        assert unit.globals[0].name == "x"

    def test_struct_with_array_field(self):
        unit = parse("typedef struct { long a; int b[3]; } x_t;")
        fields = unit.structs[0].fields
        assert fields[1].array_size == 3

    def test_global_variables(self):
        unit = parse("int x; int y = 5; int a, b;")
        names = [g.name for g in unit.globals]
        assert names == ["x", "y", "a", "b"]
        assert isinstance(unit.globals[1].init, ast.IntLiteral)

    def test_extern_prototype(self):
        unit = parse(
            """
            typedef struct node { struct node *next; } node_t;
            extern node_t *new_node();
            extern void delete_node(node_t *node);
            """
        )
        names = [p.name for p in unit.prototypes]
        assert names == ["new_node", "delete_node"]

    def test_function_definition(self):
        unit = parse("int add(int a, int b) { return a + b; }")
        function = unit.functions[0]
        assert function.name == "add"
        assert [p.name for p in function.params] == ["a", "b"]
        assert isinstance(function.body.statements[0], ast.ReturnStmt)

    def test_void_params(self):
        unit = parse("void f(void) { }")
        assert unit.functions[0].params == []

    def test_extern_with_body_rejected(self):
        with pytest.raises(ParseError):
            parse("extern int f() { return 1; }")

    def test_for_loop_rejected(self):
        with pytest.raises(ParseError):
            parse("void f() { for (;;) { } }")


class TestParserStatements:
    def _body(self, code):
        unit = parse(f"void f() {{ {code} }}")
        return unit.functions[0].body.statements

    def test_if_else(self):
        statements = self._body("if (x == 1) { y = 2; } else { y = 3; }")
        assert isinstance(statements[0], ast.IfStmt)
        assert statements[0].else_body is not None

    def test_if_without_braces(self):
        statements = self._body("if (x) y = 1;")
        assert isinstance(statements[0], ast.IfStmt)
        assert len(statements[0].then_body.statements) == 1

    def test_while_and_controls(self):
        statements = self._body("while (true) { if (x) break; continue; }")
        loop = statements[0]
        assert isinstance(loop, ast.WhileStmt)
        assert isinstance(loop.body.statements[1], ast.ContinueStmt)

    def test_do_while(self):
        statements = self._body("do { x = 1; } while (x != 0);")
        assert isinstance(statements[0], ast.DoWhileStmt)

    def test_atomic_block(self):
        statements = self._body("atomic { x = 1; }")
        assert isinstance(statements[0], ast.AtomicStmt)

    def test_local_declarations(self):
        statements = self._body("int a = 1; int *p, *q;")
        assert isinstance(statements[0], ast.DeclStmt)

    def test_return_void(self):
        statements = self._body("return;")
        assert statements[0].value is None


class TestParserExpressions:
    def _expr(self, code):
        unit = parse(f"void f() {{ x = {code}; }}")
        stmt = unit.functions[0].body.statements[0]
        return stmt.expr.value

    def test_field_access_chain(self):
        expr = self._expr("queue->head->next")
        assert isinstance(expr, ast.FieldAccess)
        assert expr.field_name == "next"
        assert isinstance(expr.base, ast.FieldAccess)

    def test_address_of_field(self):
        expr = self._expr("&tail->next")
        assert isinstance(expr, ast.Unary)
        assert expr.op == "&"

    def test_cast(self):
        expr = self._expr("(unsigned) next")
        assert isinstance(expr, ast.Cast)

    def test_call_with_casts(self):
        expr = self._expr("cas(&tail->next, (unsigned) next, (unsigned) node)")
        assert isinstance(expr, ast.CallExpr)
        assert len(expr.args) == 3

    def test_logical_operators_precedence(self):
        expr = self._expr("a == 1 && b == 2 || c == 3")
        assert isinstance(expr, ast.Binary)
        assert expr.op == "||"
        assert expr.left.op == "&&"

    def test_relational_and_additive(self):
        expr = self._expr("a + 1 < b - 2")
        assert expr.op == "<"
        assert expr.left.op == "+"

    def test_null_and_bool_literals(self):
        assert isinstance(self._expr("NULL"), ast.NullLiteral)
        assert isinstance(self._expr("true"), ast.BoolLiteral)

    def test_unary_operators(self):
        expr = self._expr("!*p")
        assert expr.op == "!"
        assert expr.operand.op == "*"

    def test_chained_assignment(self):
        unit = parse("void f() { a = b = c; }")
        stmt = unit.functions[0].body.statements[0]
        assert isinstance(stmt.expr, ast.Assign)
        assert isinstance(stmt.expr.value, ast.Assign)

    def test_index_expression(self):
        expr = self._expr("arr[i]")
        assert isinstance(expr, ast.Index)

    def test_parse_error_reports_location(self):
        with pytest.raises(ParseError) as excinfo:
            parse("void f() { x = ; }")
        assert "line" in str(excinfo.value)

    def test_sizeof_accepted(self):
        expr = self._expr("sizeof(node_t)") if False else None
        # sizeof requires a known type name; use a typedef first.
        unit = parse(
            "typedef struct n { int v; } node_t;\n"
            "void f() { x = sizeof(node_t); }"
        )
        stmt = unit.functions[0].body.statements[0]
        assert isinstance(stmt.expr.value, ast.IntLiteral)
