"""Tests for lowering C to LSL, validated by interpreting the result."""

import pytest

from repro.lang import LoweringError, compile_c
from repro.lsl import (
    Fence,
    FenceKind,
    Interpreter,
    MachineState,
    MemoryLayout,
    UNDEF,
    iter_statements,
)


def make_state(program):
    """Build a machine state whose layout matches the lowering's assumption:
    globals are laid out in declaration order starting at index 1."""
    layout = MemoryLayout()
    for decl in program.globals:
        layout.add_global(decl.name, decl.field_names, decl.initial)
    return MachineState.initial(layout)


def run(program, proc, args=()):
    state = make_state(program)
    interp = Interpreter(program, state)
    return interp.call(proc, args), state, interp


COUNTER_SOURCE = """
int counter;
int limit = 10;

void reset() { counter = 0; }

int increment(int amount) {
    int old;
    old = counter;
    counter = old + amount;
    return counter;
}

int is_at_limit() {
    if (counter >= limit) {
        return 1;
    } else {
        return 0;
    }
}

int sum_to(int n) {
    int i = 1;
    int total = 0;
    while (i <= n) {
        total = total + i;
        i = i + 1;
    }
    return total;
}
"""


class TestScalarGlobals:
    def test_reset_and_increment(self):
        program = compile_c(COUNTER_SOURCE, "counter")
        state = make_state(program)
        interp = Interpreter(program, state)
        interp.call("reset")
        assert interp.call("increment", (5,)).returns == (5,)
        assert interp.call("increment", (3,)).returns == (8,)

    def test_global_initializer(self):
        program = compile_c(COUNTER_SOURCE, "counter")
        decls = {d.name: d.initial for d in program.globals}
        assert decls["limit"] == 10
        assert decls["counter"] == 0

    def test_if_else(self):
        program = compile_c(COUNTER_SOURCE, "counter")
        state = make_state(program)
        interp = Interpreter(program, state)
        interp.call("reset")
        assert interp.call("is_at_limit").returns == (0,)
        interp.call("increment", (10,))
        assert interp.call("is_at_limit").returns == (1,)

    def test_while_loop(self):
        program = compile_c(COUNTER_SOURCE, "counter")
        result, _, _ = run(program, "sum_to", (5,))
        assert result.returns == (15,)

    def test_zero_iterations(self):
        program = compile_c(COUNTER_SOURCE, "counter")
        result, _, _ = run(program, "sum_to", (0,))
        assert result.returns == (0,)


STRUCT_SOURCE = """
typedef struct node {
    struct node *next;
    int value;
} node_t;

typedef struct queue {
    node_t *head;
    node_t *tail;
} queue_t;

queue_t queue;

extern node_t *new_node();
extern void delete_node(node_t *node);

void init_queue() {
    node_t *node;
    node = new_node();
    node->next = NULL;
    node->value = 0;
    queue.head = node;
    queue.tail = node;
}

void enqueue(int value) {
    node_t *node;
    node_t *tail;
    node = new_node();
    node->value = value;
    node->next = NULL;
    tail = queue.tail;
    tail->next = node;
    queue.tail = node;
}

int dequeue() {
    node_t *head;
    node_t *next;
    head = queue.head;
    next = head->next;
    if (next == NULL) {
        return 0 - 1;
    }
    queue.head = next;
    delete_node(head);
    return next->value;
}

int queue_is_empty() {
    node_t *head;
    head = queue.head;
    return head->next == NULL;
}
"""


class TestStructsAndHeap:
    def test_sequential_queue_fifo(self):
        program = compile_c(STRUCT_SOURCE, "seqqueue")
        state = make_state(program)
        interp = Interpreter(program, state)
        interp.call("init_queue")
        assert interp.call("queue_is_empty").returns == (1,)
        interp.call("enqueue", (7,))
        interp.call("enqueue", (8,))
        assert interp.call("queue_is_empty").returns == (0,)
        assert interp.call("dequeue").returns == (7,)
        assert interp.call("dequeue").returns == (8,)
        assert interp.call("dequeue").returns == (-1,)

    def test_struct_layout_registered(self):
        program = compile_c(STRUCT_SOURCE, "seqqueue")
        assert set(program.structs) >= {"node_t", "queue_t"}
        assert program.structs["node_t"].fields == ("next", "value")

    def test_global_struct_occupies_cells(self):
        program = compile_c(STRUCT_SOURCE, "seqqueue")
        queue_decl = [g for g in program.globals if g.name == "queue"][0]
        assert queue_decl.field_names == ("head", "tail")

    def test_havoc_allocation_field_undefined_until_written(self):
        source = """
        typedef struct node { int value; int other; } node_t;
        extern node_t *new_node();
        int probe() {
            node_t *n;
            n = new_node();
            n->value = 4;
            return n->other == 0;
        }
        """
        program = compile_c(source, "probe")
        state = make_state(program)
        interp = Interpreter(program, state)
        from repro.lsl import UndefinedValueError

        with pytest.raises(UndefinedValueError):
            interp.call("probe")


SYNC_SOURCE = """
typedef enum { free, held } lock_t;

int shared;
lock_t mutex;

void locked_add(int amount) {
    lock(&mutex);
    shared = shared + amount;
    unlock(&mutex);
}

int try_swap(int old, int new) {
    int ok;
    ok = cas(&shared, old, new);
    return ok;
}

void fenced_store(int value) {
    shared = value;
    fence("store-store");
}

void checked_store(int value) {
    assert(value >= 0);
    shared = value;
}
"""


class TestSynchronizationBuiltins:
    def test_cas_success_and_failure(self):
        program = compile_c(SYNC_SOURCE, "sync")
        state = make_state(program)
        interp = Interpreter(program, state)
        assert interp.call("try_swap", (0, 5)).returns == (1,)
        assert interp.call("try_swap", (0, 9)).returns == (0,)
        assert interp.call("try_swap", (5, 9)).returns == (1,)

    def test_lock_unlock_roundtrip(self):
        program = compile_c(SYNC_SOURCE, "sync")
        state = make_state(program)
        interp = Interpreter(program, state)
        interp.call("locked_add", (4,))
        interp.call("locked_add", (6,))
        base = state.layout.global_base("shared")
        assert state.memory[base] == 10
        mutex = state.layout.global_base("mutex")
        assert state.memory[mutex] == 0  # released

    def test_fence_lowered(self):
        program = compile_c(SYNC_SOURCE, "sync")
        body = program.procedure("fenced_store").body
        fences = [
            s for s in iter_statements(body)
            if isinstance(s, Fence)
        ]
        assert [f.kind for f in fences] == [FenceKind.STORE_STORE]

    def test_assert_passes_and_fails(self):
        program = compile_c(SYNC_SOURCE, "sync")
        state = make_state(program)
        interp = Interpreter(program, state)
        interp.call("checked_store", (3,))
        from repro.lsl import AssertionViolation

        with pytest.raises(AssertionViolation):
            interp.call("checked_store", (-1,))

    def test_unknown_fence_kind_rejected(self):
        with pytest.raises(LoweringError):
            compile_c('void f() { fence("sideways"); }', "bad")


class TestShortCircuitAndPointers:
    def test_short_circuit_and_protects_null_deref(self):
        source = """
        typedef struct node { struct node *next; int value; } node_t;
        node_t *head;
        int safe_check(int expected) {
            node_t *p;
            p = head;
            return p != NULL && p->value == expected;
        }
        """
        program = compile_c(source, "sc")
        state = make_state(program)
        interp = Interpreter(program, state)
        # head is NULL: the right operand must not be evaluated.
        assert interp.call("safe_check", (3,)).returns == (0,)

    def test_short_circuit_or(self):
        source = """
        int x;
        int either(int a, int b) { return a == 1 || b == 1; }
        """
        program = compile_c(source, "sc2")
        state = make_state(program)
        interp = Interpreter(program, state)
        assert interp.call("either", (1, 0)).returns == (1,)
        assert interp.call("either", (0, 1)).returns == (1,)
        assert interp.call("either", (0, 0)).returns == (0,)

    def test_pointer_swing_through_param(self):
        source = """
        int cell;
        void set_through(int *p, int v) { *p = v; }
        int get() { return cell; }
        int run() { set_through(&cell, 42); return get(); }
        """
        program = compile_c(source, "ptr")
        result, _, _ = run(program, "run")
        assert result.returns == (42,)

    def test_dcas_builtin(self):
        source = """
        int a;
        int b;
        int try_both(int oa, int ob) {
            return dcas(&a, oa, 1, &b, ob, 2);
        }
        """
        program = compile_c(source, "dcas")
        state = make_state(program)
        interp = Interpreter(program, state)
        assert interp.call("try_both", (0, 0)).returns == (1,)
        assert interp.call("try_both", (0, 0)).returns == (0,)  # already set
        base_a = state.layout.global_base("a")
        base_b = state.layout.global_base("b")
        assert state.memory[base_a] == 1
        assert state.memory[base_b] == 2


class TestLoweringErrors:
    def test_address_of_local_rejected(self):
        with pytest.raises(LoweringError):
            compile_c("void f() { int x; int *p; p = &x; }", "bad")

    def test_unknown_function_rejected(self):
        with pytest.raises(LoweringError):
            compile_c("void f() { mystery(); }", "bad")

    def test_unknown_identifier_rejected(self):
        with pytest.raises(LoweringError):
            compile_c("void f() { x = 1; }", "bad")

    def test_continue_in_do_while_rejected(self):
        with pytest.raises(LoweringError):
            compile_c("void f() { do { continue; } while (0); }", "bad")

    def test_missing_return_value_rejected(self):
        with pytest.raises(LoweringError):
            compile_c("int f() { return; }", "bad")

    def test_void_call_as_value_rejected(self):
        with pytest.raises(LoweringError):
            compile_c("void g() { } void f() { int x; x = g(); }", "bad")

    def test_enum_constants_available(self):
        source = """
        typedef enum { free, held } lock_t;
        int which() { return held; }
        """
        program = compile_c(source, "enum")
        result, _, _ = run(program, "which")
        assert result.returns == (1,)
