"""Tests for the differential fuzzing campaign and its matrix integration."""

import pytest

from repro.fuzz import (
    FuzzProgram,
    fuzz_cells,
    run_fuzz,
    shrink_divergence,
)
from repro.harness.matrix import FUZZ_KIND, run_matrix
from repro.harness.runner import fuzz_campaign


class TestCampaign:
    def test_small_campaign_is_clean(self):
        result = run_fuzz(budget=8, seed=123)
        assert result.ok
        assert len(result.specs) == 8
        assert result.cells_checked == 8 * 5
        assert result.divergences == []
        assert result.matrix.errors == []
        assert result.programs_per_second > 0
        payload = result.as_dict()
        assert payload["ok"] is True
        assert payload["cells"] == 40
        assert "fuzz:" in result.summary()

    def test_runner_wrapper(self):
        result = fuzz_campaign(budget=3, seed=9, memory_models=("sc",))
        assert result.ok
        assert result.models == ["sc"]
        assert result.cells_checked == 3

    def test_campaign_is_deterministic(self):
        first = run_fuzz(budget=5, seed=77, models=("sc",))
        second = run_fuzz(budget=5, seed=77, models=("sc",))
        assert first.specs == second.specs

    def test_parallel_matches_serial_verdicts(self):
        serial = run_fuzz(budget=6, seed=5, models=("sc", "relaxed"), jobs=1)
        parallel = run_fuzz(
            budget=6, seed=5, models=("sc", "relaxed"), jobs=2,
            shard_by="model",
        )
        assert serial.specs == parallel.specs
        assert [r.verdict for r in serial.matrix.results] == [
            r.verdict for r in parallel.matrix.results
        ]


class TestDegradedCampaigns:
    def test_all_inconclusive_campaign_is_not_ok(self, monkeypatch):
        # If every cell skips the comparison the campaign checked nothing;
        # that must not read as a pass (it gates CI).
        from repro.oracle import enumerator as enumerator_module
        from repro.oracle.enumerator import INCONCLUSIVE, OracleResult

        def always_inconclusive(compiled, model, **kwargs):
            from repro.memorymodel.base import get_model

            return OracleResult(
                status=INCONCLUSIVE, model=get_model(model).name,
                reason="forced by test",
            )

        monkeypatch.setattr(
            enumerator_module, "enumerate_outcomes", always_inconclusive
        )
        monkeypatch.setattr(
            "repro.oracle.differ.enumerate_outcomes", always_inconclusive
        )
        result = run_fuzz(budget=4, seed=2, models=("sc",), jobs=1)
        assert len(result.inconclusive) == result.cells_checked == 4
        assert not result.divergences
        assert not result.ok
        assert "nothing was compared" in result.summary()

    def test_sat_mining_overflow_is_inconclusive_not_an_error(self):
        from repro.fuzz import FuzzProgram
        from repro.oracle import differential_check

        report = differential_check(
            FuzzProgram.parse("x=1 r0=y | y=1 r1=x").compile(), "tso",
            max_outcomes=2,
        )
        assert report.inconclusive
        assert "overflow" in report.reason
        assert "INCONCLUSIVE" in report.describe()
        assert report.ok  # skipped, not a divergence

    def test_generator_shortfall_is_visible(self):
        from repro.fuzz import FuzzConfig

        # Only three distinct single-op single-address programs exist.
        tiny = FuzzConfig(min_threads=1, max_threads=1, min_ops=1,
                          max_ops=1, num_addresses=1)
        result = run_fuzz(budget=50, seed=1, models=("sc",), config=tiny)
        assert len(result.specs) < 50
        assert result.shortfall == 50 - len(result.specs)
        assert "short" in result.summary()
        assert result.as_dict()["shortfall"] == result.shortfall
        assert result.ok  # a small space is not an error


class TestFuzzCells:
    def test_cells_cross_programs_and_models(self):
        cells = fuzz_cells(["x=1 r0=y", "y=1 r0=x"], ["sc", "tso"])
        assert len(cells) == 4
        assert all(cell.kind == FUZZ_KIND for cell in cells)
        assert cells[0].implementation == "fuzz"
        assert cells[0].test == "x=1 r0=y"

    def test_unparseable_spec_is_a_cell_error_not_a_crash(self):
        matrix = run_matrix(fuzz_cells(["this is not a spec"], ["sc"]))
        assert not matrix.ok
        assert matrix.results[0].error
        assert "FuzzSpecError" in matrix.results[0].error

    def test_fuzz_cell_verdict_strings(self):
        matrix = run_matrix(fuzz_cells(["x=1 r0=y | y=1 r1=x"], ["sc"]))
        assert matrix.ok
        assert matrix.results[0].verdict == "agree"
        assert matrix.results[0].stats["oracle_outcomes"] == 3
        assert matrix.results[0].stats["sat_outcomes"] == 3


class TestMutationDetection:
    """The acceptance gate: an injected encoder bug must not survive a
    fuzzing campaign."""

    # drop_same_address_axiom comes from tests/conftest.py and disables
    # both halves of axiom 1 (static + symbolic).

    def test_fuzzer_catches_dropped_axiom(self, drop_same_address_axiom):
        # jobs=1 keeps every check in-process so the monkeypatch applies.
        result = run_fuzz(budget=40, seed=1, jobs=1)
        assert not result.ok
        assert result.divergences
        for divergence in result.divergences:
            # Shrunk reproducers stay replayable and still diverge.
            assert FuzzProgram.parse(divergence.shrunk_spec)
            assert divergence.missing_from_oracle or divergence.missing_from_sat

    def test_shrinker_minimizes(self, drop_same_address_axiom):
        program = FuzzProgram.parse("y=2 x=1 x=2 f(ss) | r0=x f(ll) r1=x r2=y")
        shrunk, report = shrink_divergence(program, "relaxed")
        assert report.diverged
        before = sum(len(t) for t in program.threads)
        after = sum(len(t) for t in shrunk.threads)
        assert after < before
        # No single further removal keeps the divergence.
        for candidate in shrunk.shrink_candidates():
            from repro.oracle import differential_check

            smaller = differential_check(candidate.compile(), "relaxed")
            assert not smaller.diverged
