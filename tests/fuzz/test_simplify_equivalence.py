"""Simplification preserves the projected outcome set.

The acceptance property of the CNF preprocessor: for any program and any
memory model, mining the SAT encoding with simplification *forced on*
(engagement threshold 0, so even tiny formulas run the full pipeline)
yields exactly the outcome set of the unsimplified encoding.  Generated
litmus programs exercise unit propagation, equivalence merging,
subsumption, variable elimination, model reconstruction, projected
blocking clauses and the incremental post-solve clause path all at once.
"""

from __future__ import annotations

import os
import random
from contextlib import contextmanager

from hypothesis import given, settings, strategies as st

from repro.fuzz import FuzzProgram, generate_program
from repro.oracle.differ import mine_sat_outcomes

MODELS = ["serial", "sc", "tso", "pso", "relaxed"]

_MIN_KEY = "CHECKFENCE_SIMPLIFY_MIN_CLAUSES"


@contextmanager
def forced_simplification():
    """Force the preprocessor to engage on every formula size."""
    previous = os.environ.get(_MIN_KEY)
    os.environ[_MIN_KEY] = "0"
    try:
        yield
    finally:
        if previous is None:
            del os.environ[_MIN_KEY]
        else:
            os.environ[_MIN_KEY] = previous


def random_program(seed: int) -> FuzzProgram:
    return generate_program(random.Random(seed))


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_simplification_preserves_outcome_sets(seed):
    program = random_program(seed)
    compiled = program.compile()
    for model in MODELS:
        plain = mine_sat_outcomes(compiled, model, simplify=False)
        with forced_simplification():
            simplified = mine_sat_outcomes(compiled, model, simplify=True)
        assert simplified == plain, (
            f"{program.spec()} @ {model}: simplify-on mined {simplified}, "
            f"simplify-off mined {plain}"
        )


def test_catalog_outcome_sets_identical_under_simplification():
    """Same property on real litmus shapes (fences, atomic blocks)."""
    from repro.litmus.catalog import available_litmus_tests, compiled_litmus

    catalog = available_litmus_tests()
    for name in ["store-buffering", "message-passing+fences", "load-buffering"]:
        compiled = compiled_litmus(catalog[name])
        for model in MODELS:
            plain = mine_sat_outcomes(compiled, model, simplify=False)
            with forced_simplification():
                simplified = mine_sat_outcomes(
                    compiled, model, simplify=True
                )
            assert simplified == plain, f"{name} @ {model}"


def test_catalog_check_verdicts_identical_under_simplification():
    """A full check (assertion + inclusion query, counterexample decoding)
    is verdict-identical with forced simplification, including the FAIL
    direction with its reconstructed-model counterexample."""
    from repro.core.checker import CheckOptions, check
    from repro.datatypes.registry import get_implementation

    cases = [("msn", "T0", "relaxed"), ("msn-unfenced", "T0", "relaxed")]
    from repro.harness.catalog import get_test

    for impl_name, test_name, model in cases:
        implementation = get_implementation(impl_name)
        test = get_test("queue", test_name)
        plain = check(
            implementation, test, model, CheckOptions(simplify=False)
        )
        with forced_simplification():
            simplified = check(
                implementation, test, model, CheckOptions(simplify=True)
            )
        assert simplified.passed == plain.passed, impl_name
        if not plain.passed:
            assert simplified.counterexample is not None
            # The decoded observation must be a real counterexample on
            # both sides: outside the (shared) specification.
            assert (
                simplified.counterexample.observation
                not in plain.specification
            )
