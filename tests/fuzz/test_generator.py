"""Tests for the fuzz program DSL, generator and shrinker."""

import random

import pytest

from repro.fuzz import (
    FuzzConfig,
    FuzzProgram,
    FuzzSpecError,
    generate_corpus,
    generate_program,
)


class TestSpecRoundTrip:
    def test_parse_and_render(self):
        spec = "x=1 r0=x f(ll) y=r0 | y=2 r0=y | f(full)"
        program = FuzzProgram.parse(spec)
        assert program.spec() == spec
        assert program.counts() == {
            "threads": 3, "loads": 2, "stores": 3, "fences": 2,
        }
        assert program.addresses() == ["x", "y"]

    @pytest.mark.parametrize("bad", [
        "", "   |  ", "q=!", "r0=1", "x=y", "f(zz)", "x=1 rr=x",
        "x=1 |",            # empty thread
        "x=r0",             # copied store with no preceding load
        "y=r0 r0=y",        # ... or loaded only afterwards
    ])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(FuzzSpecError):
            FuzzProgram.parse(bad)

    def test_unknown_address_raises(self):
        with pytest.raises(FuzzSpecError):
            FuzzProgram.parse("q=1").addresses()


class TestGenerator:
    def test_deterministic_from_seed(self):
        a = [p.spec() for p in generate_corpus(42, 20)]
        b = [p.spec() for p in generate_corpus(42, 20)]
        assert a == b
        assert len(set(a)) == 20  # deduplicated

    def test_different_seeds_differ(self):
        a = [p.spec() for p in generate_corpus(1, 20)]
        b = [p.spec() for p in generate_corpus(2, 20)]
        assert a != b

    def test_respects_config_bounds(self):
        config = FuzzConfig(
            min_threads=2, max_threads=2, min_ops=3, max_ops=3,
            num_addresses=1, values=(1,),
        )
        rng = random.Random(7)
        for _ in range(20):
            program = generate_program(rng, config)
            assert len(program.threads) == 2
            assert all(len(thread) == 3 for thread in program.threads)
            assert program.addresses() in ([], ["x"])
            for thread in program.threads:
                for op in thread:
                    if op.kind == "store" and op.src_reg is None:
                        assert op.value == 1

    def test_copied_stores_reference_defined_registers(self):
        rng = random.Random(11)
        config = FuzzConfig(copy_probability=0.9)
        for _ in range(50):
            program = generate_program(rng, config)
            assert program._well_formed()


class TestCompile:
    def test_compiled_shape(self):
        program = FuzzProgram.parse("x=1 r0=y | y=1 r1=x")
        compiled = program.compile()
        assert compiled.test.name == program.spec()
        assert len(compiled.invocations) == 2
        assert compiled.observation_labels() == ["t0.ret", "t1.ret"]
        stats = compiled.size_statistics()
        assert stats["loads"] == 2 and stats["stores"] == 2
        # globals x and y, one cell each
        assert compiled.layout.num_locations == 3

    def test_loadless_thread_has_no_observation(self):
        compiled = FuzzProgram.parse("x=1 | r0=x").compile()
        assert compiled.observation_labels() == ["t1.ret"]


class TestShrinking:
    def test_candidates_are_strictly_smaller(self):
        program = FuzzProgram.parse("x=1 r0=x y=r0 | y=2 f(ss) x=2")
        total = sum(len(t) for t in program.threads)
        candidates = list(program.shrink_candidates())
        assert candidates
        for candidate in candidates:
            assert sum(len(t) for t in candidate.threads) < total
            assert candidate._well_formed()

    def test_dropping_a_load_drops_its_copies(self):
        program = FuzzProgram.parse("r0=x y=r0")
        specs = {c.spec() for c in program.shrink_candidates()}
        # removing the load alone would orphan y=r0: not offered
        assert "y=r0" not in specs
        assert "r0=x" in specs
