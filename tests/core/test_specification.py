"""Tests for specification mining (both miners) and observation sets."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.specification import (
    ObservationSet,
    ReferenceSpecificationMiner,
    SatSpecificationMiner,
    SpecificationError,
    interleavings,
    mine_specification,
)
from repro.datatypes import get_implementation
from repro.encoding import compile_test
from repro.harness.catalog import get_test
from repro.lsl import Invocation, SymbolicTest


class TestInterleavings:
    def test_single_sequence(self):
        assert list(interleavings([[1, 2, 3]])) == [[1, 2, 3]]

    def test_two_singletons(self):
        results = [tuple(i) for i in interleavings([[1], [2]])]
        assert sorted(results) == [(1, 2), (2, 1)]

    def test_counts_match_binomial(self):
        # Interleavings of sequences of length 2 and 3: C(5, 2) = 10.
        results = list(interleavings([["a1", "a2"], ["b1", "b2", "b3"]]))
        assert len(results) == 10
        assert len({tuple(r) for r in results}) == 10

    def test_order_preserved_within_sequence(self):
        for result in interleavings([[1, 2], [3, 4]]):
            assert result.index(1) < result.index(2)
            assert result.index(3) < result.index(4)

    def test_empty_sequences_ignored(self):
        assert list(interleavings([[], [1], []])) == [[1]]

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 3), st.integers(1, 3))
    def test_count_formula(self, n, m):
        import math

        first = [("a", i) for i in range(n)]
        second = [("b", i) for i in range(m)]
        count = sum(1 for _ in interleavings([first, second]))
        assert count == math.comb(n + m, n)


class TestObservationSet:
    def test_membership_and_describe(self):
        spec = ObservationSet(labels=["x", "y"])
        spec.add((1, 2))
        assert (1, 2) in spec
        assert (2, 1) not in spec
        assert len(spec) == 1
        assert spec.describe((1, 2)) == "x=1, y=2"


class TestReferenceMiner:
    def _compiled(self, test_name="T0", impl="msn"):
        implementation = get_implementation(impl)
        test = get_test("queue", test_name)
        return compile_test(implementation, test)

    def test_t0_specification(self):
        spec = ReferenceSpecificationMiner(self._compiled()).mine()
        # Observation: (enqueue arg, dequeue ok, dequeue value).
        assert spec.observations == {
            (0, 0, 0),
            (1, 0, 0),
            (0, 1, 0),
            (1, 1, 1),
        }

    def test_contains_early_exit(self):
        miner = ReferenceSpecificationMiner(self._compiled())
        assert miner.contains((1, 1, 1))
        assert not miner.contains((0, 1, 1))

    def test_init_sequence_included(self):
        compiled = self._compiled("Ti2")
        spec = ReferenceSpecificationMiner(compiled).mine()
        # Every observation has 8 slots: init enqueue arg + two ops per
        # thread with their observables.
        assert all(len(obs) == len(spec.labels) for obs in spec.observations)
        assert len(spec) > 4

    def test_missing_reference_rejected(self):
        implementation = get_implementation("msn")
        implementation.reference = None
        test = get_test("queue", "T0")
        compiled = compile_test(implementation, test)
        with pytest.raises(SpecificationError):
            ReferenceSpecificationMiner(compiled)

    def test_set_specification_matches_semantics(self):
        implementation = get_implementation("lazylist")
        test = get_test("set", "Sac")
        compiled = compile_test(implementation, test)
        spec = ReferenceSpecificationMiner(compiled).mine()
        # add(x) then contains(y): contains true iff x == y and add happened
        # before; plus the orders where contains runs first.
        assert (1, 1, 1, 1) in spec
        assert (1, 1, 1, 0) in spec           # contains before add
        assert (1, 1, 0, 0) in spec           # different keys
        assert (1, 1, 0, 1) not in spec       # contains(0) cannot be true


class TestSatMinerAgreesWithReference:
    @pytest.mark.parametrize("test_name", ["T0"])
    def test_queue_t0(self, test_name):
        compiled = compile_test(
            get_implementation("msn"), get_test("queue", test_name)
        )
        reference = ReferenceSpecificationMiner(compiled).mine()
        sat = SatSpecificationMiner(compiled).mine()
        assert sat.observations == reference.observations

    def test_mine_specification_auto_prefers_reference(self):
        compiled = compile_test(get_implementation("msn"), get_test("queue", "T0"))
        spec = mine_specification(compiled, "auto")
        assert spec.method == "reference"

    def test_mine_specification_sat_method(self):
        compiled = compile_test(get_implementation("msn"), get_test("queue", "T0"))
        spec = mine_specification(compiled, "sat")
        assert spec.method == "sat"
        assert len(spec) == 4

    def test_unknown_method_rejected(self):
        compiled = compile_test(get_implementation("msn"), get_test("queue", "T0"))
        with pytest.raises(ValueError):
            mine_specification(compiled, "magic")
