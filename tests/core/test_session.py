"""Tests for the incremental :class:`repro.core.session.CheckSession`."""

import pytest

import repro.core.session as session_module
from repro.core.checker import CheckFence, CheckOptions
from repro.core.session import CheckSession
from repro.datatypes.registry import get_implementation
from repro.harness.catalog import get_test
from repro.harness.runner import model_sweep

_MODELS = ["sc", "tso", "pso", "relaxed"]


def _result_fingerprint(result):
    return (
        result.passed,
        result.memory_model,
        sorted(result.specification.observations),
        result.stats.observation_set_size,
        result.loop_bounds,
        result.notes,
    )


class TestCrossModelReuse:
    def test_sweep_mines_spec_once_with_identical_verdicts(self, monkeypatch):
        """A sweep over (sc, tso, pso, relaxed) must mine the specification
        exactly once and compile the test exactly once, while producing
        verdicts identical to independent CheckFence.check calls."""
        implementation = get_implementation("msn")
        test = get_test("queue", "T0")

        mine_calls = []
        real_mine = session_module.mine_specification

        def counting_mine(compiled, method, **kwargs):
            mine_calls.append(compiled.test.name)
            return real_mine(compiled, method, **kwargs)

        monkeypatch.setattr(
            session_module, "mine_specification", counting_mine
        )

        session = CheckSession(implementation)
        swept = session.sweep(test, _MODELS)

        assert len(mine_calls) == 1
        assert session.cache_stats["mine"] == 1
        assert session.cache_stats["mine_hits"] == len(_MODELS) - 1
        assert session.cache_stats["compile"] == 1
        assert session.cache_stats["compile_hits"] >= len(_MODELS) - 1

        independent = [
            CheckFence(get_implementation("msn")).check(test, model)
            for model in _MODELS
        ]
        for swept_result, independent_result in zip(swept, independent):
            assert _result_fingerprint(swept_result) == _result_fingerprint(
                independent_result
            )

    def test_sweep_detects_bug_same_as_independent_checks(self):
        """Reuse must not mask failures: the unfenced queue still fails on
        relaxed and passes on sc within one session."""
        implementation = get_implementation("msn-unfenced")
        results = CheckSession(implementation).sweep(
            get_test("queue", "T0"), ["sc", "relaxed"]
        )
        by_model = {r.memory_model: r for r in results}
        assert by_model["sc"].passed
        assert not by_model["relaxed"].passed
        assert by_model["relaxed"].counterexample is not None

    def test_repeated_check_same_pair_is_stable(self):
        """Re-checking the same (test, model) pair in one session returns
        the same verdict (the inclusion-contaminated encoding is evicted,
        not reused for the next assertion query)."""
        session = CheckSession(get_implementation("msn"))
        test = get_test("queue", "T0")
        first = session.check(test, "relaxed")
        second = session.check(test, "relaxed")
        assert _result_fingerprint(first) == _result_fingerprint(second)

    def test_backend_name_recorded(self):
        session = CheckSession(
            get_implementation("msn"),
            CheckOptions(solver_backend="internal"),
        )
        result = session.check(get_test("queue", "T0"), "sc")
        assert result.stats.solver_backend == "internal"
        assert result.stats.solver_decisions > 0


class TestRunnerSweep:
    def test_model_sweep_matches_per_model_checks(self):
        results = model_sweep("ms2", "T0", _MODELS)
        assert [r.memory_model for r in results] == _MODELS
        assert all(r.passed for r in results)
        # One specification object shared across all results.
        specs = {id(r.specification) for r in results}
        assert len(specs) == 1


class TestCheckFenceFacade:
    def test_checkfence_exposes_session(self):
        checker = CheckFence(get_implementation("msn"))
        assert isinstance(checker.session, CheckSession)
        assert checker.implementation.name == "msn"
        assert checker.program is checker.session.program

    def test_dimacs_fallback_backend_matches_internal(self, monkeypatch):
        """DimacsBackend (internal fallback when nothing is on PATH) must
        produce the same verdict as InternalBackend."""
        monkeypatch.setattr(
            "repro.sat.backend.find_dimacs_solver", lambda: None
        )
        test = get_test("queue", "T0")
        internal = CheckFence(
            get_implementation("msn"), CheckOptions(solver_backend="internal")
        ).check(test, "relaxed")
        dimacs = CheckFence(
            get_implementation("msn"), CheckOptions(solver_backend="dimacs")
        ).check(test, "relaxed")
        assert internal.passed == dimacs.passed
        assert (
            sorted(internal.specification.observations)
            == sorted(dimacs.specification.observations)
        )


class TestSimplifyKnob:
    def test_session_resolves_and_keys_on_the_knob(self, monkeypatch):
        monkeypatch.delenv("CHECKFENCE_SIMPLIFY", raising=False)
        implementation = get_implementation("msn")
        test = get_test("queue", "T0")
        on_session = CheckSession(implementation, CheckOptions())
        off_session = CheckSession(
            implementation, CheckOptions(simplify=False)
        )
        assert on_session.simplify is True
        assert off_session.simplify is False
        model = session_module.get_model("relaxed")
        assert (
            on_session._encoded_key(test, model)
            != off_session._encoded_key(test, model)
        )
        assert on_session.encoded(test, "relaxed").simplify is True
        assert off_session.encoded(test, "relaxed").simplify is False

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("CHECKFENCE_SIMPLIFY", "0")
        session = CheckSession(get_implementation("msn"), CheckOptions())
        assert session.simplify is False

    def test_check_records_simplify_in_stats(self, monkeypatch):
        monkeypatch.delenv("CHECKFENCE_SIMPLIFY", raising=False)
        session = CheckSession(get_implementation("msn"), CheckOptions())
        result = session.check(get_test("queue", "T0"), "sc")
        assert result.stats.simplify is True
        off = CheckSession(
            get_implementation("msn"), CheckOptions(simplify=False)
        ).check(get_test("queue", "T0"), "sc")
        assert off.stats.simplify is False
        assert off.passed == result.passed
