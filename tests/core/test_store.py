"""Tests for the persistent on-disk result store (:mod:`repro.core.store`)."""

import sqlite3

import pytest

from repro.cli import main
from repro.core import store as store_module
from repro.core.checker import CheckFence, CheckOptions
from repro.core.store import (
    SPEC_KIND,
    VERDICT_KIND,
    VerdictStore,
    content_key,
    open_store,
    store_enabled,
)
from repro.datatypes.registry import get_implementation
from repro.harness.catalog import get_test


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """Point the store at a throwaway directory for the test."""
    path = tmp_path / "cf-cache"
    monkeypatch.setenv("CHECKFENCE_CACHE_DIR", str(path))
    return path


def _check(impl_name, test_name, model, **options):
    implementation = get_implementation(impl_name)
    test = get_test("queue", test_name)
    checker = CheckFence(implementation, CheckOptions(**options))
    result = checker.check(test, model)
    return checker, result


class TestKnobResolution:
    def test_explicit_flag_wins(self, monkeypatch):
        monkeypatch.setenv("CHECKFENCE_STORE", "1")
        assert store_enabled(False) is False
        monkeypatch.setenv("CHECKFENCE_STORE", "0")
        assert store_enabled(True) is True

    def test_env_fallback_defaults_off(self, monkeypatch):
        monkeypatch.delenv("CHECKFENCE_STORE", raising=False)
        assert store_enabled() is False
        monkeypatch.setenv("CHECKFENCE_STORE", "1")
        assert store_enabled() is True
        monkeypatch.setenv("CHECKFENCE_STORE", "0")
        assert store_enabled() is False

    def test_open_store(self, cache_dir):
        assert open_store(False) is None
        store = open_store(True)
        assert isinstance(store, VerdictStore)
        assert store.path.parent == cache_dir

    def test_session_default_off(self, cache_dir, monkeypatch):
        monkeypatch.delenv("CHECKFENCE_STORE", raising=False)
        checker, result = _check("msn", "T0", "sc")
        assert checker.session.store is None
        assert result.stats.store_hit is False
        assert not (cache_dir / "store.sqlite").exists()


class TestVerdictRoundtrip:
    def test_second_session_serves_from_store(self, cache_dir):
        checker1, cold = _check("msn", "T0", "sc", store=True)
        assert cold.stats.store_hit is False
        assert checker1.session.cache_stats["store_hits"] == 0
        assert checker1.session.cache_stats["store_misses"] == 2

        checker2, warm = _check("msn", "T0", "sc", store=True)
        assert warm.stats.store_hit is True
        assert checker2.session.cache_stats["store_hits"] == 1
        assert checker2.session.cache_stats["store_misses"] == 0
        # The warm check skipped the whole pipeline.
        assert checker2.session.cache_stats["compile"] == 0
        assert checker2.session.cache_stats["encode"] == 0

        assert warm.passed == cold.passed
        assert warm.notes == cold.notes
        assert warm.loop_bounds == cold.loop_bounds
        assert warm.stats.cnf_clauses == cold.stats.cnf_clauses
        assert warm.stats.cnf_variables == cold.stats.cnf_variables
        assert warm.stats.observation_set_size == cold.stats.observation_set_size

    def test_fail_verdict_restores_counterexample_text(self, cache_dir):
        _, cold = _check("msn-unfenced", "T0", "relaxed", store=True)
        _, warm = _check("msn-unfenced", "T0", "relaxed", store=True)
        assert cold.passed is False and warm.passed is False
        assert warm.stats.store_hit is True
        assert warm.counterexample is not None
        assert warm.counterexample.format() == cold.counterexample.format()
        # summary() renders through the restored shim.
        assert "FAIL" in warm.summary()

    def test_spec_cell_hits_even_when_verdict_misses(self, cache_dir):
        _check("msn", "T0", "sc", store=True)
        # Different model: verdict cell misses, spec cell (model-independent)
        # hits, so the serial-model mining is skipped.
        checker, result = _check("msn", "T0", "tso", store=True)
        assert result.stats.store_hit is False
        assert checker.session.cache_stats["store_hits"] == 1  # spec
        assert checker.session.cache_stats["mine"] == 0
        # The restored spec equals a freshly mined one.
        fresh_checker, fresh = _check("msn", "T0", "tso", store=False)
        assert (
            result.specification.observations
            == fresh.specification.observations
        )


class TestKeySensitivity:
    def test_model_changes_key(self, cache_dir):
        _check("msn", "T0", "sc", store=True)
        checker, result = _check("msn", "T0", "pso", store=True)
        assert result.stats.store_hit is False

    def test_option_changes_key(self, cache_dir):
        _check("msn", "T0", "sc", store=True)
        checker, result = _check(
            "msn", "T0", "sc", store=True, use_range_analysis=False
        )
        assert result.stats.store_hit is False
        assert checker.session.cache_stats["store_hits"] == 0

    def test_implementation_changes_key(self, cache_dir):
        _check("msn", "T0", "sc", store=True)
        checker, result = _check("ms2", "T0", "sc", store=True)
        assert result.stats.store_hit is False

    def test_backend_and_share_do_not_change_key(self, cache_dir):
        """solver_backend and share_encode are verdict-preserving by
        construction (differentially gated in CI), so cells are shared
        across them — the point of a content-addressed cache."""
        _check("msn", "T0", "sc", store=True, share_encode=True)
        _, warm = _check("msn", "T0", "sc", store=True, share_encode=False)
        assert warm.stats.store_hit is True

    def test_content_key_is_deterministic(self):
        parts = ["impl", "source", ["T0", "init", "threads"], "sc", [2, True]]
        assert content_key(VERDICT_KIND, parts) == content_key(
            VERDICT_KIND, parts
        )
        assert content_key(VERDICT_KIND, parts) != content_key(
            SPEC_KIND, parts
        )


class TestRobustness:
    def test_corrupted_database_degrades_to_misses(self, cache_dir):
        _check("msn", "T0", "sc", store=True)
        db = cache_dir / "store.sqlite"
        db.write_bytes(b"this is not a sqlite database, sorry")
        for side in ("-wal", "-shm"):
            extra = cache_dir / ("store.sqlite" + side)
            if extra.exists():
                extra.unlink()
        checker, result = _check("msn", "T0", "sc", store=True)
        assert result.passed is True
        assert result.stats.store_hit is False

    def test_clear_resets_broken_flag(self, cache_dir):
        store = VerdictStore()
        store.path.parent.mkdir(parents=True, exist_ok=True)
        store.path.write_bytes(b"garbage")
        assert store.get("missing") is None  # marks broken
        store.clear()
        store.put("k", VERDICT_KIND, {"passed": True})
        assert store.get("k") == {"passed": True}

    def test_stats_and_clear(self, cache_dir):
        store = VerdictStore()
        stats = store.stats()
        assert stats["exists"] is False and stats["cells"] == 0
        store.put("k1", VERDICT_KIND, {"passed": True})
        store.put("k2", SPEC_KIND, {"labels": []})
        stats = store.stats()
        assert stats["cells"] == 2
        assert stats["kinds"] == {VERDICT_KIND: 1, SPEC_KIND: 1}
        assert stats["size_bytes"] > 0
        assert store.clear() == 2
        assert store.stats()["cells"] == 0
        assert not store.path.exists()

    def test_database_is_sqlite(self, cache_dir):
        store = VerdictStore()
        store.put("k", VERDICT_KIND, {"passed": True})
        store.close()
        conn = sqlite3.connect(str(store.path))
        rows = conn.execute("SELECT key, kind FROM cells").fetchall()
        conn.close()
        assert rows == [("k", VERDICT_KIND)]

    def test_wal_and_busy_timeout_enabled(self, cache_dir):
        store = VerdictStore()
        store.put("k", VERDICT_KIND, {"passed": True})
        conn = store._connection()
        assert conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        assert conn.execute("PRAGMA busy_timeout").fetchone()[0] >= 1000


def _contending_writer(path, worker, count):
    store = VerdictStore(path)
    for i in range(count):
        store.put(f"w{worker}-k{i}", VERDICT_KIND, {"worker": worker, "i": i})
    store.close()


class TestConcurrentWriters:
    def test_parallel_writers_do_not_corrupt_or_lose_rows(self, tmp_path):
        """Several matrix workers share one --store: concurrent inserts
        must all land (WAL + busy_timeout), never raise, and leave a
        readable database."""
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        ctx = multiprocessing.get_context("fork")
        path = tmp_path / "shared.sqlite"
        writers, per_writer = 4, 25
        processes = [
            ctx.Process(target=_contending_writer, args=(path, w, per_writer))
            for w in range(writers)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=60)
        assert all(p.exitcode == 0 for p in processes)
        store = VerdictStore(path)
        assert store.stats()["cells"] == writers * per_writer
        for w in range(writers):
            assert store.get(f"w{w}-k0") == {"worker": w, "i": 0}

    def test_forked_child_reconnects_instead_of_sharing(self, tmp_path):
        """The per-PID connection guard: a child inheriting the store
        object must open its own connection, not reuse the parent's."""
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        ctx = multiprocessing.get_context("fork")
        store = VerdictStore(tmp_path / "shared.sqlite")
        store.put("parent", VERDICT_KIND, {"who": "parent"})

        def child():
            store.put("child", VERDICT_KIND, {"who": "child"})

        process = ctx.Process(target=child)
        process.start()
        process.join(timeout=30)
        assert process.exitcode == 0
        assert store.get("child") == {"who": "child"}


class TestStoreFaultInjection:
    def test_store_io_fault_degrades_to_misses(self, tmp_path, monkeypatch):
        from repro.core import faults

        store = VerdictStore(tmp_path / "s.sqlite")
        store.put("k", VERDICT_KIND, {"passed": True})
        monkeypatch.setenv(faults.FAULT_ENV, "store-io")
        assert store.get("k") is None  # fault -> miss, not an exception
        monkeypatch.delenv(faults.FAULT_ENV)
        # The failed operation marked the store broken for this process;
        # clear() resets it, after which the data written pre-fault is
        # gone but the store works again.
        store.clear()
        store.put("k2", VERDICT_KIND, {"passed": False})
        assert store.get("k2") == {"passed": False}

    def test_store_io_fault_never_crashes_a_check(self, cache_dir, monkeypatch):
        from repro.core import faults

        monkeypatch.setenv(faults.FAULT_ENV, "store-io")
        checker, result = _check("msn", "T0", "sc", store=True)
        assert result.passed is True
        assert result.stats.store_hit is False


class TestDegradedNeverStored:
    def test_timeout_verdict_is_not_cached(self, cache_dir):
        """A TIMEOUT is a property of one run's budget, not of the cell:
        it must never be served from the store as if it were an answer."""
        checker, result = _check("msn", "T0", "sc", store=True, timeout=1e-9)
        assert result.degraded == "TIMEOUT"
        store = VerdictStore()
        assert store.stats()["cells"] == 0
        # A fresh, unbudgeted check runs for real and passes.
        checker, result = _check("msn", "T0", "sc", store=True)
        assert result.passed is True
        assert not result.degraded


class TestCacheCli:
    def test_cache_stats_and_clear(self, cache_dir, capsys):
        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        assert "store not created yet" in out

        assert main([
            "check", "--impl", "msn", "--test", "T0",
            "--model", "sc", "--store",
        ]) == 0
        capsys.readouterr()

        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        assert "cells:  2" in out
        assert "verdict: 1" in out and "spec: 1" in out

        assert main(["cache", "--clear"]) == 0
        out = capsys.readouterr().out
        assert "removed 2 cell(s)" in out
        assert main(["cache"]) == 0
        assert "store not created yet" in capsys.readouterr().out

    def test_no_store_overrides_env(self, cache_dir, monkeypatch):
        monkeypatch.setenv("CHECKFENCE_STORE", "1")
        assert main([
            "check", "--impl", "msn", "--test", "T0",
            "--model", "sc", "--no-store",
        ]) == 0
        assert not (cache_dir / "store.sqlite").exists()


class TestProfileOutput:
    def test_profile_line_on_stderr(self, cache_dir, monkeypatch, capsys):
        monkeypatch.setenv("CHECKFENCE_PROFILE", "1")
        _check("msn", "T0", "sc", store=True)
        err = capsys.readouterr().err
        assert "[profile] msn/T0@sc" in err
        assert "skeleton" in err and "solve=" in err
        _check("msn", "T0", "sc", store=True)
        err = capsys.readouterr().err
        assert "store-hit" in err

    def test_profile_off_by_default(self, cache_dir, monkeypatch, capsys):
        monkeypatch.delenv("CHECKFENCE_PROFILE", raising=False)
        _check("msn", "T0", "sc")
        assert "[profile]" not in capsys.readouterr().err
