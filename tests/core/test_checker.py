"""Tests for the CheckFence driver, counterexamples, and the baselines."""

import pytest

from repro.core import (
    CheckFence,
    CheckOptions,
    check,
    refine_loop_bounds,
    run_commit_point_check,
)
from repro.datatypes import get_implementation
from repro.encoding import compile_test
from repro.harness.catalog import get_test
from repro.memorymodel import RELAXED, SEQUENTIAL_CONSISTENCY, get_model


class TestCheckerOnNonblockingQueue:
    def test_fenced_queue_passes_relaxed(self):
        result = check(get_implementation("msn"), get_test("queue", "T0"), "relaxed")
        assert result.passed
        assert result.counterexample is None
        assert result.stats.observation_set_size == 4

    def test_unfenced_queue_fails_relaxed_with_trace(self):
        result = check(
            get_implementation("msn-unfenced"), get_test("queue", "T0"), "relaxed"
        )
        assert result.failed
        trace = result.counterexample
        assert trace is not None
        assert trace.kind == "observation"
        assert trace.memory_model == "relaxed"
        assert trace.steps, "trace should list the executed accesses"
        text = trace.format()
        assert "observation" in text
        assert "memory order" in text

    def test_unfenced_queue_passes_sequential_consistency(self):
        result = check(
            get_implementation("msn-unfenced"), get_test("queue", "T0"), "sc"
        )
        assert result.passed

    def test_two_lock_queue(self):
        assert check(get_implementation("ms2"), get_test("queue", "T0"), "relaxed").passed
        assert check(
            get_implementation("ms2-unfenced"), get_test("queue", "T0"), "sc"
        ).passed
        assert check(
            get_implementation("ms2-unfenced"), get_test("queue", "T0"), "relaxed"
        ).failed

    def test_statistics_populated(self):
        result = check(get_implementation("msn"), get_test("queue", "T0"), "relaxed")
        stats = result.stats
        assert stats.loads > 0 and stats.stores > 0
        assert stats.cnf_clauses > 1000
        assert stats.cnf_variables > 100
        assert stats.total_seconds > 0
        assert stats.encode_seconds > 0
        assert "PASS" in result.summary()

    def test_specification_cached_across_models(self):
        checker = CheckFence(get_implementation("msn"))
        test = get_test("queue", "T0")
        first = checker.check(test, "sc")
        second = checker.check(test, "relaxed")
        assert first.specification is second.specification


class TestCheckerOptions:
    def test_sat_specification_method(self):
        options = CheckOptions(specification_method="sat")
        result = check(
            get_implementation("msn"), get_test("queue", "T0"), "relaxed", options
        )
        assert result.passed
        assert result.specification.method == "sat"

    def test_range_analysis_off_still_correct(self):
        options = CheckOptions(use_range_analysis=False)
        result = check(
            get_implementation("msn"), get_test("queue", "T0"), "relaxed", options
        )
        assert result.passed

    def test_range_analysis_reduces_formula_size(self):
        with_ranges = check(
            get_implementation("msn"), get_test("queue", "T0"), "relaxed"
        )
        without_ranges = check(
            get_implementation("msn"), get_test("queue", "T0"), "relaxed",
            CheckOptions(use_range_analysis=False),
        )
        assert with_ranges.stats.cnf_clauses < without_ranges.stats.cnf_clauses

    def test_disable_assertion_check(self):
        options = CheckOptions(check_assertions=False)
        result = check(
            get_implementation("ms2"), get_test("queue", "T0"), "relaxed", options
        )
        assert result.passed


class TestLoopBounds:
    def test_refinement_converges_on_t0(self):
        implementation = get_implementation("msn")
        outcome = refine_loop_bounds(
            implementation, get_test("queue", "T0"), get_model("relaxed"),
            max_rounds=3,
        )
        assert outcome.refinement_rounds >= 1
        assert outcome.compiled is not None

    def test_lazy_bounds_option_runs(self):
        options = CheckOptions(lazy_loop_bounds=True)
        result = check(
            get_implementation("msn"), get_test("queue", "T0"), "relaxed", options
        )
        assert result.passed


class TestCommitPointBaseline:
    def test_agrees_on_passing_check(self):
        compiled = compile_test(get_implementation("msn"), get_test("queue", "T0"))
        outcome = run_commit_point_check(compiled, RELAXED)
        assert outcome.passed
        assert outcome.solver_calls >= 1
        assert len(outcome.validated_observations) >= 1

    def test_detects_failure_on_unfenced_queue(self):
        compiled = compile_test(
            get_implementation("msn-unfenced"), get_test("queue", "T0")
        )
        outcome = run_commit_point_check(compiled, RELAXED)
        assert not outcome.passed
        assert outcome.counterexample is not None

    def test_agrees_under_sequential_consistency(self):
        compiled = compile_test(
            get_implementation("msn-unfenced"), get_test("queue", "T0")
        )
        outcome = run_commit_point_check(compiled, SEQUENTIAL_CONSISTENCY)
        assert outcome.passed
