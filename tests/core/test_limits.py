"""Tests for the resource-governance layer (deadlines and budgets)."""

import pytest

from repro.core import limits
from repro.core.checker import CheckOptions


class TestDeadline:
    def test_inert_deadline_never_fires(self):
        deadline = limits.Deadline()
        assert not deadline.enforced
        assert deadline.remaining() is None
        assert not deadline.expired()
        deadline.check()  # no-op

    def test_expired_deadline_raises_timeout(self):
        deadline = limits.Deadline(timeout_seconds=0.0)
        assert deadline.enforced
        assert deadline.expired()
        assert deadline.remaining() == 0.0
        with pytest.raises(limits.TimeoutExceeded) as exc_info:
            deadline.check()
        assert exc_info.value.kind == limits.TIMEOUT

    def test_generous_deadline_does_not_fire(self):
        deadline = limits.Deadline(timeout_seconds=3600.0)
        assert not deadline.expired()
        assert deadline.remaining() > 3000
        deadline.check()

    def test_memory_cap_fires_on_tiny_budget(self):
        # The interpreter's RSS is far above 1 MB, so a 1 MB cap trips
        # immediately wherever /proc/self/statm is readable.
        if limits.current_rss_bytes() is None:
            pytest.skip("no /proc/self/statm on this platform")
        deadline = limits.Deadline(memory_limit_mb=1.0)
        assert deadline.memory_exceeded()
        with pytest.raises(limits.MemoryExceeded) as exc_info:
            deadline.check()
        assert exc_info.value.kind == limits.OOM

    def test_huge_memory_cap_does_not_fire(self):
        deadline = limits.Deadline(memory_limit_mb=1 << 20)
        assert not deadline.memory_exceeded()
        deadline.check()

    def test_limit_exceptions_share_base_class(self):
        assert issubclass(limits.TimeoutExceeded, limits.LimitExceeded)
        assert issubclass(limits.MemoryExceeded, limits.LimitExceeded)
        assert limits.TIMEOUT in limits.DEGRADED_VERDICTS
        assert limits.OOM in limits.DEGRADED_VERDICTS
        assert limits.CRASHED in limits.DEGRADED_VERDICTS


class TestScope:
    def test_check_deadline_is_noop_without_scope(self):
        assert limits.active_deadline() is None
        limits.check_deadline()

    def test_scope_installs_and_removes(self):
        deadline = limits.Deadline(timeout_seconds=3600.0)
        with limits.deadline_scope(deadline) as installed:
            assert installed is deadline
            assert limits.active_deadline() is deadline
        assert limits.active_deadline() is None

    def test_none_and_inert_deadlines_install_nothing(self):
        with limits.deadline_scope(None) as installed:
            assert installed is None
            assert limits.active_deadline() is None
        with limits.deadline_scope(limits.Deadline()) as installed:
            assert installed is None
            assert limits.active_deadline() is None

    def test_expired_scope_fires_through_module_poll(self):
        with limits.deadline_scope(limits.Deadline(timeout_seconds=0.0)):
            with pytest.raises(limits.TimeoutExceeded):
                limits.check_deadline()

    def test_scope_unwinds_on_exception(self):
        with pytest.raises(RuntimeError):
            with limits.deadline_scope(limits.Deadline(timeout_seconds=1.0)):
                raise RuntimeError("boom")
        assert limits.active_deadline() is None

    def test_nested_scopes_innermost_wins(self):
        outer = limits.Deadline(timeout_seconds=3600.0)
        inner = limits.Deadline(timeout_seconds=1800.0)
        with limits.deadline_scope(outer):
            with limits.deadline_scope(inner):
                assert limits.active_deadline() is inner
            assert limits.active_deadline() is outer


class TestOptionsPlumbing:
    def test_no_budget_yields_no_deadline(self, monkeypatch):
        monkeypatch.delenv(limits.TIMEOUT_ENV, raising=False)
        monkeypatch.delenv(limits.MEMORY_LIMIT_ENV, raising=False)
        assert limits.deadline_from_options(CheckOptions()) is None

    def test_options_budget_builds_deadline(self):
        deadline = limits.deadline_from_options(
            CheckOptions(timeout=5.0, memory_limit_mb=256.0)
        )
        assert deadline.timeout_seconds == 5.0
        assert deadline.memory_limit_mb == 256.0

    def test_env_fallback_when_options_silent(self, monkeypatch):
        monkeypatch.setenv(limits.TIMEOUT_ENV, "7.5")
        monkeypatch.delenv(limits.MEMORY_LIMIT_ENV, raising=False)
        deadline = limits.deadline_from_options(CheckOptions())
        assert deadline.timeout_seconds == 7.5
        assert deadline.memory_limit_mb is None

    def test_options_take_precedence_over_env(self, monkeypatch):
        monkeypatch.setenv(limits.TIMEOUT_ENV, "100")
        deadline = limits.deadline_from_options(CheckOptions(timeout=2.0))
        assert deadline.timeout_seconds == 2.0

    def test_garbage_env_ignored(self, monkeypatch):
        monkeypatch.setenv(limits.TIMEOUT_ENV, "not-a-number")
        monkeypatch.setenv(limits.MEMORY_LIMIT_ENV, "-3")
        assert limits.deadline_from_options(CheckOptions()) is None

    def test_ensure_scope_prefers_ambient_deadline(self):
        # A matrix cell's deadline must not be clobbered by the nested
        # session establishing a fresh (later-expiring) one.
        ambient = limits.Deadline(timeout_seconds=1.0)
        with limits.deadline_scope(ambient):
            with limits.ensure_scope(CheckOptions(timeout=3600.0)) as active:
                assert active is ambient

    def test_ensure_scope_builds_from_options_when_unscoped(self, monkeypatch):
        monkeypatch.delenv(limits.TIMEOUT_ENV, raising=False)
        monkeypatch.delenv(limits.MEMORY_LIMIT_ENV, raising=False)
        with limits.ensure_scope(CheckOptions(timeout=9.0)) as active:
            assert active is not None
            assert active.timeout_seconds == 9.0
        assert limits.active_deadline() is None

    def test_budget_excluded_from_store_fingerprint(self):
        # A deadline is a property of one run, never of the cached triple.
        from repro.core.session import CheckSession
        from repro.datatypes.registry import get_implementation

        impl = get_implementation("msn")
        base = CheckSession(impl, CheckOptions())._options_fingerprint()
        budgeted = CheckSession(
            impl, CheckOptions(timeout=1.0, memory_limit_mb=64.0)
        )._options_fingerprint()
        assert base == budgeted
