"""Tests for the unified CHECKFENCE_FAULT injection framework."""

import pytest

from repro.core import faults


class TestParse:
    def test_empty_string_parses_to_nothing(self):
        assert faults.parse_faults("") == ()
        assert faults.parse_faults(" , ,") == ()

    def test_worker_crash_with_default_attempt_bound(self):
        (fault,) = faults.parse_faults("worker-crash:msn/T0@sc")
        assert fault.kind == "worker-crash"
        assert fault.arg == "msn/T0@sc"
        assert fault.count == 1

    def test_worker_crash_with_explicit_attempt_bound(self):
        (fault,) = faults.parse_faults("worker-crash:msn/T0@sc:3")
        assert fault.arg == "msn/T0@sc"
        assert fault.count == 3

    def test_worker_hang_parses_like_crash(self):
        (fault,) = faults.parse_faults("worker-hang:a/b@c:2")
        assert (fault.kind, fault.arg, fault.count) == ("worker-hang", "a/b@c", 2)

    def test_mixed_directive_list(self):
        parsed = faults.parse_faults(
            "worker-crash:a/b@c,interrupt:d/e@f,cell-timeout:g/h@i,"
            "solver-raise:4,store-io"
        )
        assert [f.kind for f in parsed] == [
            "worker-crash", "interrupt", "cell-timeout", "solver-raise",
            "store-io",
        ]

    def test_unknown_directive_rejected(self):
        with pytest.raises(ValueError, match="unknown fault"):
            faults.parse_faults("worker-crsh:a/b@c")

    def test_missing_arguments_rejected(self):
        with pytest.raises(ValueError):
            faults.parse_faults("worker-crash")
        with pytest.raises(ValueError):
            faults.parse_faults("interrupt:")
        with pytest.raises(ValueError):
            faults.parse_faults("solver-raise:zero")
        with pytest.raises(ValueError):
            faults.parse_faults("store-io:extra")


class TestActiveFaults:
    def test_env_drives_active_faults(self, monkeypatch):
        monkeypatch.setenv(faults.FAULT_ENV, "store-io")
        assert faults.store_io_active()
        monkeypatch.delenv(faults.FAULT_ENV)
        assert not faults.store_io_active()

    def test_legacy_crash_env_folds_to_always_crash(self, monkeypatch):
        monkeypatch.delenv(faults.FAULT_ENV, raising=False)
        monkeypatch.setenv(faults.LEGACY_CRASH_ENV, "a/b@c,d/e@f")
        attempts = faults.crash_attempts()
        assert set(attempts) == {"a/b@c", "d/e@f"}
        # Big enough to out-last any retry budget: legacy semantics are
        # "crash every attempt".
        assert all(bound > 100 for bound in attempts.values())

    def test_legacy_interrupt_env_folds_in(self, monkeypatch):
        monkeypatch.delenv(faults.FAULT_ENV, raising=False)
        monkeypatch.setenv(faults.LEGACY_INTERRUPT_ENV, "a/b@c")
        assert faults.interrupt_cells() == {"a/b@c"}

    def test_helpers_filter_by_kind(self, monkeypatch):
        monkeypatch.setenv(
            faults.FAULT_ENV,
            "worker-crash:x/y@z:2,worker-hang:p/q@r,cell-timeout:t/u@v,"
            "solver-raise:3,solver-raise:7",
        )
        monkeypatch.delenv(faults.LEGACY_CRASH_ENV, raising=False)
        monkeypatch.delenv(faults.LEGACY_INTERRUPT_ENV, raising=False)
        assert faults.crash_attempts() == {"x/y@z": 2}
        assert faults.hang_attempts() == {"p/q@r": 1}
        assert faults.timeout_cells() == {"t/u@v"}
        assert faults.solver_raise_counts() == frozenset({3, 7})
        assert not faults.store_io_active()


class TestSolverProxy:
    class _Recorder:
        def __init__(self):
            self.calls = 0

        def solve(self):
            self.calls += 1
            return "sat"

        def add_clause(self, clause):
            return clause

    def test_proxy_raises_on_armed_call_only(self, monkeypatch):
        monkeypatch.setenv(faults.FAULT_ENV, "solver-raise:2")
        faults.reset_solver_counter()
        backend = self._Recorder()
        proxy = faults.FaultySolverProxy(backend)
        assert proxy.solve() == "sat"
        with pytest.raises(RuntimeError, match="injected solver fault"):
            proxy.solve()
        assert proxy.solve() == "sat"
        assert backend.calls == 2  # the armed call never reached the backend

    def test_proxy_delegates_other_attributes(self, monkeypatch):
        monkeypatch.delenv(faults.FAULT_ENV, raising=False)
        faults.reset_solver_counter()
        proxy = faults.FaultySolverProxy(self._Recorder())
        assert proxy.add_clause((1, 2)) == (1, 2)
