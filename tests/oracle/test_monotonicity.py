"""Property tests: memory-model monotonicity of the enumerator.

Section 2.3.3 orders the models Seriality > SC > TSO > PSO > Relaxed: a
stronger model admits a subset of executions.  For arbitrary generated
programs the enumerated outcome sets must respect that chain, and a
program's outcomes must be a subset of its fence-stripped variant's
(fences only ever forbid behaviours).
"""

import random

from hypothesis import given, settings, strategies as st

from repro.fuzz import FuzzProgram, generate_program
from repro.memorymodel.base import (
    PSO,
    RELAXED,
    SEQUENTIAL_CONSISTENCY,
    SERIAL,
    TSO,
    available_models,
    is_stronger,
)
from repro.oracle import enumerate_outcomes

#: Weakest to strongest.
CHAIN = ["relaxed", "pso", "tso", "sc", "serial"]


def random_program(seed: int) -> FuzzProgram:
    return generate_program(random.Random(seed))


def oracle_outcomes(program: FuzzProgram, model: str):
    result = enumerate_outcomes(program.compile(), model)
    assert result.ok, result.reason
    return result.outcomes


def strip_fences(program: FuzzProgram) -> FuzzProgram | None:
    threads = tuple(
        stripped
        for thread in program.threads
        if (stripped := tuple(op for op in thread if op.kind != "fence"))
    )
    if not threads:
        return None
    return FuzzProgram(threads=threads)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_stronger_models_allow_subsets(seed):
    program = random_program(seed)
    sets = [oracle_outcomes(program, model) for model in CHAIN]
    for weaker, stronger in zip(sets, sets[1:]):
        assert stronger <= weaker, (
            f"{program.spec()}: monotonicity violated between models"
        )


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_fences_only_forbid_outcomes(seed):
    program = random_program(seed)
    stripped = strip_fences(program)
    if stripped is None or stripped.spec() == program.spec():
        return
    for model in CHAIN:
        fenced = oracle_outcomes(program, model)
        unfenced = oracle_outcomes(stripped, model)
        assert fenced <= unfenced, (
            f"{program.spec()}: fences allowed a new outcome under {model}"
        )


def test_syntactic_strength_order_matches_chain():
    # The static is_stronger relation must agree with the semantic chain
    # the two properties above enumerate.
    ordered = [SERIAL, SEQUENTIAL_CONSISTENCY, TSO, PSO, RELAXED]
    assert ordered == available_models()
    for i, stronger in enumerate(ordered):
        for weaker in ordered[i:]:
            assert is_stronger(stronger, weaker)
    assert not is_stronger(RELAXED, SERIAL)
    assert not is_stronger(PSO, TSO)
