"""Oracle coverage of the hand-written litmus catalog (Fig. 2, Sec. 2.3.3).

Every catalog test is enumerated operationally under all five memory models
and compared against the SAT encoding, and the paper's expected verdict
table is pinned against the *enumerator* (previously only the SAT side
asserted it, in benchmarks/bench_fig2_litmus.py).
"""

import pytest

from repro.litmus.catalog import (
    available_litmus_tests,
    compiled_litmus,
    iriw_allowed,
)
from repro.oracle import differential_check, enumerate_outcomes

MODELS = ["serial", "sc", "tso", "pso", "relaxed"]

#: Expected "is the interesting observation reachable?" verdicts.  The
#: serial column follows from atomic operations: every relaxed outcome is
#: forbidden and (for SB/LB) even the SC-interleaving outcomes shrink.
EXPECTED = {
    "store-buffering": {
        "serial": False, "sc": False, "tso": True, "pso": True,
        "relaxed": True,
    },
    "store-buffering+fences": {
        "serial": False, "sc": False, "tso": False, "pso": False,
        "relaxed": False,
    },
    "message-passing": {
        "serial": False, "sc": False, "tso": False, "pso": True,
        "relaxed": True,
    },
    "message-passing+fences": {
        "serial": False, "sc": False, "tso": False, "pso": False,
        "relaxed": False,
    },
    "load-buffering": {
        "serial": False, "sc": False, "tso": False, "pso": False,
        "relaxed": True,
    },
    "load-buffering+fences": {
        "serial": False, "sc": False, "tso": False, "pso": False,
        "relaxed": False,
    },
}


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("name", sorted(available_litmus_tests()))
def test_catalog_oracle_agrees_with_sat(name, model):
    litmus = available_litmus_tests()[name]
    report = differential_check(compiled_litmus(litmus), model, name=name)
    assert not report.inconclusive, report.describe()
    assert not report.diverged, report.describe()


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_catalog_verdicts_pinned_against_enumerator(name, model):
    litmus = available_litmus_tests()[name]
    result = enumerate_outcomes(compiled_litmus(litmus), model)
    assert result.ok, result.reason
    assert result.allows(litmus.observation) == EXPECTED[name][model], (
        f"{name} under {model}: oracle says "
        f"{'allowed' if result.allows(litmus.observation) else 'forbidden'}"
    )


class TestIriwFinalMemory:
    """Fig. 2 proper: the two readers record their observations in globals
    (r1a..r2b), so the verdict is a final-memory query, not an observation
    slot; the enumerator must agree with the SAT-side ``iriw_allowed``."""

    #: r1a=1, r1b=0, r2a=1, r2b=0 — the readers disagree on the order of
    #: the two independent writes.  Globals are x, y, r1a, r1b, r2a, r2b
    #: at locations 1..6.
    WANTED = {3: 1, 4: 0, 5: 1, 6: 0}

    @pytest.mark.parametrize("model", MODELS)
    def test_enumerator_matches_sat(self, model):
        litmus = available_litmus_tests()["iriw-fenced"]
        result = enumerate_outcomes(
            compiled_litmus(litmus), model, record_final_memory=True
        )
        assert result.ok, result.reason
        assert result.allows_final_memory(self.WANTED) == iriw_allowed(model)

    def test_relaxed_forbids_iriw(self):
        litmus = available_litmus_tests()["iriw-fenced"]
        result = enumerate_outcomes(
            compiled_litmus(litmus), "relaxed", record_final_memory=True
        )
        assert result.ok
        assert not result.allows_final_memory(self.WANTED)
