"""Unit tests for the operational enumerator itself (no SAT side)."""

import pytest

from repro.analysis.allocation import build_layout, resolve_allocations
from repro.analysis.ranges import RangeAnalysis
from repro.datatypes.spec import DataTypeImplementation, OperationSpec
from repro.encoding.testprogram import CompiledInvocation, CompiledTest
from repro.fuzz import FuzzProgram
from repro.lsl.instructions import (
    Block,
    BreakIf,
    ConstAssign,
    ContinueIf,
    Load,
    Store,
)
from repro.lsl.program import GlobalDecl, Invocation, Procedure, Program, SymbolicTest
from repro.oracle import INCONCLUSIVE, OK, enumerate_outcomes


def outcomes(spec: str, model: str) -> set:
    result = enumerate_outcomes(FuzzProgram.parse(spec).compile(), model)
    assert result.status == OK, result.reason
    return result.outcomes


def compile_statements(threads, ret_regs=()):
    """A minimal CompiledTest over one global ``x`` from raw statements
    (for shapes the fuzz DSL cannot express: loops, branches)."""
    program = Program(name="raw")
    program.add_global(GlobalDecl(name="x", initial=0))
    layout = build_layout(program)
    invocations = []
    for index, statements in enumerate(threads):
        name = f"t{index}"
        regs = list(ret_regs[index]) if index < len(ret_regs) else []
        program.add_procedure(
            Procedure(name=name, params=(), returns=tuple(regs),
                      body=list(statements))
        )
        invocations.append(CompiledInvocation(
            thread=index, position=0, global_index=index, label=name,
            operation=OperationSpec(name=name, proc=name,
                                    has_return=bool(regs)),
            statements=list(statements),
            arg_regs=[], out_regs=[], ret_regs=regs,
        ))
    bodies = [inv.statements for inv in invocations]
    allocation = resolve_allocations(bodies, layout)
    return CompiledTest(
        implementation=DataTypeImplementation(
            name="raw", description="", source="", operations={},
            init_operation=None, reference=None,
        ),
        test=SymbolicTest(
            name="raw", threads=[[Invocation(f"t{i}")]
                                 for i in range(len(threads))],
        ),
        program=program,
        invocations=invocations,
        layout=layout,
        allocation=allocation,
        ranges=RangeAnalysis(layout, allocation).analyze(bodies),
        loop_bounds={},
    )


class TestModelSeparation:
    def test_store_buffering_separates_sc_from_tso(self):
        spec = "x=1 r0=y | y=1 r1=x"
        assert (0, 0) not in outcomes(spec, "sc")
        assert (0, 0) in outcomes(spec, "tso")

    def test_store_load_fence_restores_sc(self):
        spec = "x=1 f(sl) r0=y | y=1 f(sl) r1=x"
        assert outcomes(spec, "relaxed") == outcomes(spec, "sc")

    def test_seriality_shrinks_sc(self):
        # Under atomic operations each whole thread runs without
        # interleaving, so one thread must see the other's store.
        spec = "x=1 r0=y | y=1 r1=x"
        serial = outcomes(spec, "serial")
        assert serial < outcomes(spec, "sc")
        assert serial == {(0, 1), (1, 0)}

    def test_store_forwarding_reads_own_buffer(self):
        # The load must see the thread's own earlier store, whether it is
        # still buffered or already performed.
        assert outcomes("x=1 r0=x", "tso") == {(1,)}
        assert outcomes("x=1 r0=x", "relaxed") == {(1,)}

    def test_same_address_store_order_protects_po_load(self):
        # load-then-store to one address: axiom 1 orders the load first,
        # and forwarding never applies to a later store.
        assert outcomes("r0=x x=1", "relaxed") == {(0,)}

    def test_thin_air_values_on_relaxed(self):
        # The load-buffering cycle with copied values: the encoding leaves
        # value dependencies unordered, so any width-bounded value can
        # circulate.  The enumerator's guess-and-check must find them all.
        spec = "r0=x y=r0 | r1=y x=r1"
        assert outcomes(spec, "sc") == {(0, 0)}
        assert outcomes(spec, "relaxed") == {(v, v) for v in range(4)}


class TestInconclusiveSurfacing:
    def test_step_limit_is_inconclusive_not_a_crash(self):
        # An unbounded loop (possible in hand-built LSL) must surface as
        # INCONCLUSIVE via the step budget.
        loop = Block(tag="L", body=[
            ConstAssign("one", 1),
            ContinueIf(cond="one", tag="L"),
        ])
        compiled = compile_statements([[loop]])
        result = enumerate_outcomes(compiled, "sc", max_steps=100)
        assert result.status == INCONCLUSIVE
        assert "steps" in result.reason

    def test_control_flow_on_loaded_value_is_inconclusive(self):
        branch = Block(tag="L", body=[
            ConstAssign("addr", 1),
            Load(dst="r", addr="addr"),
            BreakIf(cond="r", tag="L"),
            ConstAssign("c", 1),
            Store(addr="addr", src="c"),
        ])
        compiled = compile_statements([[branch]])
        result = enumerate_outcomes(compiled, "relaxed")
        assert result.status == INCONCLUSIVE
        assert "concrete" in result.reason

    def test_taken_break_skipping_accesses_is_inconclusive(self):
        skip = Block(tag="L", body=[
            ConstAssign("one", 1),
            BreakIf(cond="one", tag="L"),
            ConstAssign("addr", 1),
            Store(addr="addr", src="one"),
        ])
        compiled = compile_statements([[skip]])
        result = enumerate_outcomes(compiled, "relaxed")
        assert result.status == INCONCLUSIVE
        assert "skips memory operations" in result.reason

    def test_node_budget_is_inconclusive(self):
        compiled = FuzzProgram.parse("x=1 r0=y | y=1 r1=x").compile()
        result = enumerate_outcomes(compiled, "relaxed", max_nodes=3)
        assert result.status == INCONCLUSIVE
        assert "states" in result.reason

    def test_inconclusive_result_refuses_verdicts(self):
        compiled = FuzzProgram.parse("x=1 r0=y").compile()
        result = enumerate_outcomes(compiled, "relaxed", max_nodes=1)
        assert result.status == INCONCLUSIVE
        with pytest.raises(RuntimeError):
            result.allows((0,))
