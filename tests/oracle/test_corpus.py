"""Differential regression corpus: frozen fuzz programs vs the encoder.

Thirty fuzzer-shaped programs (fixed at generation time, see
``corpus.txt``) are checked with the full three-way differential harness:
the operational enumerator, the reads-from closure engine and the mined
SAT outcome set must all agree under Relaxed, PSO, TSO, SC and Seriality.
Any drift in any engine trips one of these cells without running the
fuzzer.

A mutation test makes the safety net itself testable: disabling the
same-address store-order axiom in the encoder must produce divergences.
"""

from pathlib import Path

import pytest

from repro.fuzz import FuzzProgram, compiled_fuzz_program
from repro.oracle import differential_check

MODELS = ["serial", "sc", "tso", "pso", "relaxed"]

#: The hand-written coherence sentinel (first corpus line): two same-address
#: stores observed through a load-load fence.
COHERENCE_SPEC = "x=1 x=2 | r0=x f(ll) r1=x"


def corpus_specs() -> list[str]:
    path = Path(__file__).parent / "corpus.txt"
    specs = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            specs.append(line)
    return specs


CORPUS = corpus_specs()


def test_corpus_is_frozen_and_parseable():
    assert len(CORPUS) == 30
    assert CORPUS[0] == COHERENCE_SPEC
    for spec in CORPUS:
        assert FuzzProgram.parse(spec).spec() == spec


@pytest.mark.parametrize("model", MODELS)
def test_corpus_engines_agree_three_way(model):
    failures = []
    for spec in CORPUS:
        report = differential_check(
            compiled_fuzz_program(spec), model, name=spec, engines="all"
        )
        assert report.engines == ("enumerator", "rfcheck", "sat")
        assert not report.inconclusive, (
            f"corpus program became inconclusive: {report.describe()}"
        )
        if report.diverged:
            failures.append(report.describe())
    assert not failures, "\n".join(failures)


class TestEncoderMutationIsCaught:
    """Dropping the same-address store-order axiom must not go unnoticed."""

    # The drop_same_address_axiom fixture (tests/conftest.py) disables
    # both halves of the axiom: the statically resolved constant-address
    # pairs and the symbolic implication.

    def test_coherence_sentinel_diverges(self, drop_same_address_axiom):
        report = differential_check(
            FuzzProgram.parse(COHERENCE_SPEC).compile(), "relaxed",
            name=COHERENCE_SPEC,
        )
        assert report.diverged
        # The mutated encoder *allows* executions the axioms forbid
        # (reading the first store after the second): the dangerous,
        # under-constrained direction.
        assert report.missing_from_oracle
        assert (2, 1) in report.missing_from_oracle

    def test_three_way_isolates_the_mutated_engine(
        self, drop_same_address_axiom
    ):
        # With all three engines running, the two unmutated engines agree
        # with each other and both diverge from the mutated SAT encoder —
        # the pairwise report points at the culprit.
        report = differential_check(
            FuzzProgram.parse(COHERENCE_SPEC).compile(), "relaxed",
            name=COHERENCE_SPEC, engines="all",
        )
        assert report.diverged
        pairs = {
            (pair["first"], pair["second"])
            for pair in report.pair_divergences()
        }
        assert pairs == {("enumerator", "sat"), ("rfcheck", "sat")}

    def test_corpus_catches_the_mutation(self, drop_same_address_axiom):
        diverged = []
        for spec in CORPUS:
            report = differential_check(
                FuzzProgram.parse(spec).compile(), "relaxed", name=spec
            )
            if report.diverged:
                diverged.append(spec)
        assert diverged, "no corpus program caught the dropped axiom"
