"""Regression tests pinning the final-memory default-value semantics.

An execution's final memory image stores ``None`` for a havoc'd cell no
store touched and no load observed.  Such a cell kept its unconstrained
initial value, so a final-memory query on it must match exactly the values
of the location's havoc domain — the old behaviour compared ``None ==
wanted`` and silently matched *nothing*, which under-reports IRIW-style
final-memory verdicts.  Asking about a location outside the image must be
an error, not a silent mismatch.
"""

import pytest

from repro.analysis.allocation import build_layout, resolve_allocations
from repro.analysis.ranges import RangeAnalysis
from repro.datatypes.spec import DataTypeImplementation, OperationSpec
from repro.encoding.testprogram import CompiledInvocation, CompiledTest
from repro.lsl.instructions import ConstAssign, Store
from repro.lsl.program import (
    GlobalDecl,
    Invocation,
    Procedure,
    Program,
    SymbolicTest,
)
from repro.lsl.values import UNDEF
from repro.oracle import enumerate_outcomes

#: Thread 0 stores 1 to ``x`` (location 1); the havoc'd global ``h``
#: (location 2) is never touched by anyone.
STORE_X = [
    ConstAssign("addr", 1),
    ConstAssign("one", 1),
    Store(addr="addr", src="one"),
]


def compiled_with_untouched_havoc_cell() -> CompiledTest:
    program = Program(name="final-memory")
    program.add_global(GlobalDecl(name="x", initial=0))
    program.add_global(GlobalDecl(name="h", initial=UNDEF))
    layout = build_layout(program)
    program.add_procedure(
        Procedure(name="t0", params=(), returns=(), body=list(STORE_X))
    )
    invocations = [CompiledInvocation(
        thread=0, position=0, global_index=0, label="t0",
        operation=OperationSpec(name="t0", proc="t0", has_return=False),
        statements=list(STORE_X),
        arg_regs=[], out_regs=[], ret_regs=[],
    )]
    bodies = [inv.statements for inv in invocations]
    allocation = resolve_allocations(bodies, layout)
    return CompiledTest(
        implementation=DataTypeImplementation(
            name="raw", description="", source="", operations={},
            init_operation=None, reference=None,
        ),
        test=SymbolicTest(name="final-memory",
                          threads=[[Invocation("t0")]]),
        program=program,
        invocations=invocations,
        layout=layout,
        allocation=allocation,
        ranges=RangeAnalysis(layout, allocation).analyze(bodies),
        loop_bounds={},
    )


@pytest.fixture(scope="module")
def result():
    res = enumerate_outcomes(
        compiled_with_untouched_havoc_cell(), "sc",
        record_final_memory=True,
    )
    assert res.ok, res.reason
    return res


class TestUntouchedHavocCell:
    def test_image_records_none_with_a_domain(self, result):
        assert result.final_memories
        for memory in result.final_memories:
            image = dict(memory)
            assert image[1] == 1       # the store always lands
            assert image[2] is None    # untouched havoc'd cell
        assert 2 in result.final_domains

    def test_none_matches_every_domain_value(self, result):
        domain = result.final_domains[2]
        values = (
            sorted(domain) if domain is not None
            else range(result.value_mask + 1)
        )
        assert values, "havoc domain unexpectedly empty"
        for value in values:
            assert result.allows_final_memory({2: value}), value

    def test_none_rejects_out_of_domain_values(self, result):
        out_of_range = result.value_mask + 1
        assert not result.allows_final_memory({2: out_of_range})

    def test_stored_cell_still_matches_exactly(self, result):
        assert result.allows_final_memory({1: 1})
        assert not result.allows_final_memory({1: 0})

    def test_combined_query_mixes_both_kinds(self, result):
        domain = result.final_domains[2]
        value = sorted(domain)[0] if domain is not None else 0
        assert result.allows_final_memory({1: 1, 2: value})
        assert not result.allows_final_memory({1: 0, 2: value})

    def test_unknown_location_raises_instead_of_guessing(self, result):
        with pytest.raises(KeyError):
            result.allows_final_memory({99: 0})
