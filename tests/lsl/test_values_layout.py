"""Tests for LSL values and the memory layout."""

import pytest

from repro.lsl import NULL, UNDEF, MemoryLayout, UndefinedValueError, is_undef
from repro.lsl.values import format_value, is_defined, require_defined


class TestValues:
    def test_undef_is_singleton(self):
        from repro.lsl.values import _Undefined

        assert _Undefined() is UNDEF

    def test_undef_in_condition_raises(self):
        with pytest.raises(ValueError):
            bool(UNDEF)

    def test_is_undef(self):
        assert is_undef(UNDEF)
        assert not is_undef(0)
        assert not is_undef(5)
        assert is_defined(3)
        assert not is_defined(UNDEF)

    def test_require_defined(self):
        assert require_defined(7) == 7
        with pytest.raises(UndefinedValueError):
            require_defined(UNDEF)

    def test_format_value(self):
        assert format_value(UNDEF) == "undef"
        assert format_value(12) == "12"

    def test_null_is_zero(self):
        assert NULL == 0


class TestMemoryLayout:
    def test_null_slot_reserved(self):
        layout = MemoryLayout()
        assert layout.num_locations == 1
        assert layout.name_of(NULL) == "null"

    def test_scalar_global(self):
        layout = MemoryLayout()
        base = layout.add_global("x", initial=7)
        assert base == 1
        assert layout.name_of(base) == "x"
        assert layout.initial_value(base) == 7
        assert layout.global_base("x") == base

    def test_struct_global(self):
        layout = MemoryLayout()
        base = layout.add_global("queue", field_names=("head", "tail"))
        assert layout.name_of(base) == "queue.head"
        assert layout.name_of(base + 1) == "queue.tail"
        assert layout.num_locations == 3

    def test_struct_global_with_initials(self):
        layout = MemoryLayout()
        base = layout.add_global("pair", ("a", "b"), initial=(3, 4))
        assert layout.initial_value(base) == 3
        assert layout.initial_value(base + 1) == 4

    def test_initial_mismatch_rejected(self):
        layout = MemoryLayout()
        with pytest.raises(ValueError):
            layout.add_global("pair", ("a", "b"), initial=(1,))

    def test_duplicate_global_rejected(self):
        layout = MemoryLayout()
        layout.add_global("x")
        with pytest.raises(ValueError):
            layout.add_global("x")

    def test_heap_object(self):
        layout = MemoryLayout()
        layout.add_global("x")
        base = layout.add_heap_object("node#1", ("next", "value"))
        assert layout.info(base).is_heap
        assert layout.name_of(base) == "node#1.next"
        assert is_undef(layout.initial_value(base))

    def test_initial_memory_excludes_null(self):
        layout = MemoryLayout()
        layout.add_global("x", initial=5)
        layout.add_global("y", initial=0)
        memory = layout.initial_memory()
        assert NULL not in memory
        assert memory[layout.global_base("x")] == 5

    def test_valid_indices(self):
        layout = MemoryLayout()
        layout.add_global("x")
        layout.add_global("y")
        assert list(layout.valid_indices()) == [1, 2]

    def test_copy_is_independent(self):
        layout = MemoryLayout()
        layout.add_global("x")
        clone = layout.copy()
        clone.add_global("y")
        assert layout.num_locations == 2
        assert clone.num_locations == 3

    def test_name_of_out_of_range(self):
        layout = MemoryLayout()
        assert "loc 42" in layout.name_of(42)
