"""Tests for the LSL builder, printer, and serial interpreter."""

import pytest

from repro.lsl import (
    AssertionViolation,
    AssumptionFailed,
    Block,
    FenceKind,
    GlobalDecl,
    Interpreter,
    LslBuilder,
    MachineState,
    MemoryLayout,
    NullDereference,
    PrimitiveOp,
    Procedure,
    Program,
    StepLimitExceeded,
    StructLayout,
    UNDEF,
    UndefinedValueError,
    count_memory_accesses,
    count_statements,
    format_procedure,
    format_program,
)


def make_counter_program() -> Program:
    """A tiny shared-counter data type: init, increment, read."""
    program = Program("counter")
    program.add_global(GlobalDecl("counter"))
    program.add_procedure(Procedure("noop", (), (), []))

    # init: counter = 0
    b = LslBuilder()
    addr = b.const(1, dst="addr")  # counter is the first location
    zero = b.const(0)
    b.store(addr, zero)
    program.add_procedure(Procedure("init", (), (), b.statements))

    # inc: counter = counter + 1, returns new value
    b = LslBuilder()
    addr = b.const(1, dst="addr")
    old = b.load(addr)
    one = b.const(1)
    new = b.prim(PrimitiveOp.ADD, old, one, dst="new")
    b.store(addr, new)
    program.add_procedure(Procedure("inc", (), ("new",), b.statements))

    # get: returns counter
    b = LslBuilder()
    addr = b.const(1, dst="addr")
    val = b.load(addr, dst="val")
    program.add_procedure(Procedure("get", (), ("val",), b.statements))
    return program


def fresh_state() -> MachineState:
    layout = MemoryLayout()
    layout.add_global("counter")
    return MachineState.initial(layout)


class TestInterpreterBasics:
    def test_store_load_roundtrip(self):
        program = make_counter_program()
        state = fresh_state()
        interp = Interpreter(program, state)
        interp.call("init")
        assert interp.call("get").returns == (0,)
        assert interp.call("inc").returns == (1,)
        assert interp.call("inc").returns == (2,)
        assert interp.call("get").returns == (2,)

    def test_arguments_and_returns(self):
        program = Program("args")
        b = LslBuilder()
        result = b.prim(PrimitiveOp.ADD, "a", "b", dst="sum")
        program.add_procedure(Procedure("add", ("a", "b"), ("sum",), b.statements))
        state = MachineState.initial(MemoryLayout())
        interp = Interpreter(program, state)
        assert interp.call("add", (3, 4)).returns == (7,)

    def test_wrong_arity_raises(self):
        program = make_counter_program()
        interp = Interpreter(program, fresh_state())
        with pytest.raises(TypeError):
            interp.call("inc", (1,))

    def test_missing_procedure(self):
        program = make_counter_program()
        interp = Interpreter(program, fresh_state())
        with pytest.raises(KeyError):
            interp.call("does_not_exist")

    def test_undefined_return_register(self):
        program = Program("p")
        program.add_procedure(Procedure("f", (), ("never_set",), []))
        interp = Interpreter(program, MachineState.initial(MemoryLayout()))
        assert interp.call("f").returns == (UNDEF,)

    def test_fences_are_serial_noops(self):
        program = Program("p")
        b = LslBuilder()
        b.fence(FenceKind.STORE_STORE)
        b.fence("load-load")
        value = b.const(42, dst="out")
        program.add_procedure(Procedure("f", (), ("out",), b.statements))
        interp = Interpreter(program, MachineState.initial(MemoryLayout()))
        assert interp.call("f").returns == (42,)


class TestControlFlow:
    def test_loop_with_break(self):
        # Sum 1..5 with a loop: while (i <= 5) { sum += i; i += 1 }
        program = Program("loop")
        b = LslBuilder()
        i = b.const(1, dst="i")
        total = b.const(0, dst="total")
        limit = b.const(5)
        one = b.const(1)
        with b.block("L") as tag:
            done = b.prim(PrimitiveOp.GT, "i", limit, dst="done")
            b.break_if(done, tag)
            b.prim(PrimitiveOp.ADD, "total", "i", dst="total")
            b.prim(PrimitiveOp.ADD, "i", one, dst="i")
            b.continue_always(tag)
        program.add_procedure(Procedure("sum5", (), ("total",), b.statements))
        interp = Interpreter(program, MachineState.initial(MemoryLayout()))
        assert interp.call("sum5").returns == (15,)

    def test_break_out_of_nested_block(self):
        program = Program("nested")
        b = LslBuilder()
        out = b.const(0, dst="out")
        with b.block("outer") as outer:
            with b.block("inner"):
                cond = b.const(1)
                b.break_if(cond, outer)
            # This statement is skipped because the break targets "outer".
            b.const(99, dst="out")
        program.add_procedure(Procedure("f", (), ("out",), b.statements))
        interp = Interpreter(program, MachineState.initial(MemoryLayout()))
        assert interp.call("f").returns == (0,)

    def test_infinite_loop_hits_step_limit(self):
        program = Program("spin")
        b = LslBuilder()
        with b.block("L") as tag:
            b.continue_always(tag)
        program.add_procedure(Procedure("f", (), (), b.statements))
        interp = Interpreter(
            program, MachineState.initial(MemoryLayout()), max_steps=200
        )
        with pytest.raises(StepLimitExceeded):
            interp.call("f")

    def test_atomic_block_executes_inline(self):
        program = Program("atomic")
        b = LslBuilder()
        with b.atomic():
            b.const(5, dst="x")
        program.add_procedure(Procedure("f", (), ("x",), b.statements))
        interp = Interpreter(program, MachineState.initial(MemoryLayout()))
        assert interp.call("f").returns == (5,)

    def test_procedure_call(self):
        program = Program("calls")
        b = LslBuilder()
        b.prim(PrimitiveOp.ADD, "a", "a", dst="doubled")
        program.add_procedure(
            Procedure("double", ("a",), ("doubled",), b.statements)
        )
        b = LslBuilder()
        x = b.const(21, dst="x")
        b.call("double", [x], ["y"])
        program.add_procedure(Procedure("main", (), ("y",), b.statements))
        interp = Interpreter(program, MachineState.initial(MemoryLayout()))
        assert interp.call("main").returns == (42,)


class TestErrorsAndNondeterminism:
    def test_assert_failure(self):
        program = Program("p")
        b = LslBuilder()
        zero = b.const(0)
        b.assert_(zero)
        program.add_procedure(Procedure("f", (), (), b.statements))
        interp = Interpreter(program, MachineState.initial(MemoryLayout()))
        with pytest.raises(AssertionViolation):
            interp.call("f")

    def test_assume_failure(self):
        program = Program("p")
        b = LslBuilder()
        zero = b.const(0)
        b.assume(zero)
        program.add_procedure(Procedure("f", (), (), b.statements))
        interp = Interpreter(program, MachineState.initial(MemoryLayout()))
        with pytest.raises(AssumptionFailed):
            interp.call("f")

    def test_null_dereference(self):
        program = Program("p")
        b = LslBuilder()
        null = b.const(0)
        b.load(null)
        program.add_procedure(Procedure("f", (), (), b.statements))
        interp = Interpreter(program, MachineState.initial(MemoryLayout()))
        with pytest.raises(NullDereference):
            interp.call("f")

    def test_undefined_value_in_condition(self):
        program = Program("p")
        b = LslBuilder()
        b.break_if("never_assigned", "nowhere")
        program.add_procedure(Procedure("f", (), (), b.statements))
        interp = Interpreter(program, MachineState.initial(MemoryLayout()))
        with pytest.raises(UndefinedValueError):
            interp.call("f")

    def test_havoc_allocation_reads_are_undefined(self):
        program = Program("p")
        b = LslBuilder()
        node = b.alloc(2, "node", ("next", "value"))
        b.load(node, dst="first_field")
        program.add_procedure(Procedure("f", (), ("first_field",), b.statements))
        interp = Interpreter(program, MachineState.initial(MemoryLayout()))
        assert interp.call("f").returns == (UNDEF,)

    def test_zero_allocation_reads_zero(self):
        program = Program("p")
        b = LslBuilder()
        node = b.alloc(2, "node", ("next", "value"), init="zero")
        b.load(node, dst="first_field")
        program.add_procedure(Procedure("f", (), ("first_field",), b.statements))
        interp = Interpreter(program, MachineState.initial(MemoryLayout()))
        assert interp.call("f").returns == (0,)

    def test_choose_uses_chooser(self):
        program = Program("p")
        b = LslBuilder()
        b.choose((0, 1), dst="x")
        program.add_procedure(Procedure("f", (), ("x",), b.statements))
        interp = Interpreter(
            program,
            MachineState.initial(MemoryLayout()),
            chooser=lambda stmt: stmt.choices[-1],
        )
        assert interp.call("f").returns == (1,)

    def test_observe_collects_values(self):
        program = Program("p")
        b = LslBuilder()
        x = b.const(3, dst="x")
        y = b.const(4, dst="y")
        b.observe("pair", [x, y])
        program.add_procedure(Procedure("f", (), (), b.statements))
        interp = Interpreter(program, MachineState.initial(MemoryLayout()))
        result = interp.call("f")
        assert result.observations == [("pair", (3, 4))]


class TestLimitsAndAssumptions:
    """Direct coverage of the interpreter's discard/limit paths (the same
    conditions the operational oracle surfaces as INCONCLUSIVE)."""

    def spin_program(self) -> Program:
        program = Program("spin")
        b = LslBuilder()
        with b.block("L") as tag:
            b.continue_always(tag)
        program.add_procedure(Procedure("f", (), (), b.statements))
        return program

    def test_step_limit_message_names_the_budget(self):
        interp = Interpreter(
            self.spin_program(), MachineState.initial(MemoryLayout()),
            max_steps=77,
        )
        with pytest.raises(StepLimitExceeded, match="77"):
            interp.call("f")

    def test_step_limit_applies_to_run_statements(self):
        b = LslBuilder()
        with b.block("L") as tag:
            b.continue_always(tag)
        interp = Interpreter(
            Program("raw"), MachineState.initial(MemoryLayout()), max_steps=50
        )
        with pytest.raises(StepLimitExceeded):
            interp.run_statements(b.statements)

    def test_steps_are_counted_in_results(self):
        program = Program("p")
        b = LslBuilder()
        b.const(1, dst="x")
        b.const(2, dst="y")
        program.add_procedure(Procedure("f", (), ("x",), b.statements))
        interp = Interpreter(program, MachineState.initial(MemoryLayout()))
        result = interp.call("f")
        assert result.steps == 2
        # A generous budget is not consumed across calls incorrectly: the
        # counter is cumulative for the interpreter instance.
        assert interp.call("f").steps == 4

    def test_bounded_loop_just_under_the_limit_succeeds(self):
        program = make_counter_program()
        interp = Interpreter(program, fresh_state(), max_steps=10)
        assert interp.call("inc").returns == (1,)

    def test_assumption_failure_carries_the_condition(self):
        program = Program("p")
        b = LslBuilder()
        zero = b.const(0, dst="flag")
        b.assume(zero)
        program.add_procedure(Procedure("f", (), (), b.statements))
        interp = Interpreter(program, MachineState.initial(MemoryLayout()))
        with pytest.raises(AssumptionFailed, match="flag"):
            interp.call("f")

    def test_assumption_failure_propagates_from_nested_call(self):
        program = Program("p")
        b = LslBuilder()
        zero = b.const(0)
        b.assume(zero)
        program.add_procedure(Procedure("inner", (), (), b.statements))
        b = LslBuilder()
        b.call("inner", [], [])
        b.const(9, dst="after")
        program.add_procedure(Procedure("outer", (), ("after",), b.statements))
        interp = Interpreter(program, MachineState.initial(MemoryLayout()))
        with pytest.raises(AssumptionFailed):
            interp.call("outer")

    def test_passing_assumption_continues_execution(self):
        program = Program("p")
        b = LslBuilder()
        one = b.const(1)
        b.assume(one)
        b.const(5, dst="out")
        program.add_procedure(Procedure("f", (), ("out",), b.statements))
        interp = Interpreter(program, MachineState.initial(MemoryLayout()))
        assert interp.call("f").returns == (5,)

    def test_assumption_is_not_an_assertion_violation(self):
        # The two discard paths are distinct exception types: assumptions
        # discard executions, assertions report bugs.
        program = Program("p")
        b = LslBuilder()
        zero = b.const(0)
        b.assume(zero)
        program.add_procedure(Procedure("f", (), (), b.statements))
        interp = Interpreter(program, MachineState.initial(MemoryLayout()))
        with pytest.raises(AssumptionFailed):
            try:
                interp.call("f")
            except AssertionViolation:  # pragma: no cover - the bug guard
                pytest.fail("AssumptionFailed must not be AssertionViolation")


class TestStructuralHelpers:
    def test_count_statements_and_accesses(self):
        program = make_counter_program()
        inc = program.procedure("inc")
        assert count_statements(inc.body) == 5
        assert count_memory_accesses(inc.body) == (1, 1)

    def test_printer_output(self):
        program = make_counter_program()
        program.add_struct(StructLayout("node_t", ("next", "value")))
        text = format_program(program)
        assert "proc inc" in text
        assert "struct node_t" in text
        proc_text = format_procedure(program.procedure("inc"))
        assert "*addr" in proc_text

    def test_block_rendering(self):
        b = LslBuilder()
        with b.block("L") as tag:
            b.break_always(tag)
        from repro.lsl import format_body

        lines = format_body(b.statements)
        assert any("L: {" in line for line in lines)
