"""Encode-sharing preserves formulas, outcome sets, and verdicts.

The acceptance property of the shared-skeleton optimization: for any
program and any memory model, encoding on a fork of the memoized
model-independent skeleton produces exactly the same formula — clause for
clause — as rebuilding from scratch, hence the same outcome sets and
check verdicts.  Sharing and scratch run the identical construction
sequence; these tests are the differential gate that keeps that true.
"""

from __future__ import annotations

import random
import subprocess
import sys

from hypothesis import given, settings, strategies as st

from repro.encoding.formula import encode_test
from repro.fuzz import FuzzProgram, generate_program
from repro.memorymodel.base import get_model
from repro.oracle.differ import mine_sat_outcomes

MODELS = ["serial", "sc", "tso", "pso", "relaxed"]


def _mine(compiled, model, share, monkeypatch):
    monkeypatch.setenv("CHECKFENCE_SHARE_ENCODE", "1" if share else "0")
    return mine_sat_outcomes(compiled, model)


def test_catalog_outcome_sets_identical_with_sharing(monkeypatch):
    """Real litmus shapes (fences, atomic blocks): the mined outcome set
    under every model is identical shared vs scratch."""
    from repro.litmus.catalog import available_litmus_tests, compiled_litmus

    catalog = available_litmus_tests()
    for name in [
        "store-buffering",
        "message-passing+fences",
        "load-buffering",
    ]:
        compiled = compiled_litmus(catalog[name])
        for model in MODELS:
            scratch = _mine(compiled, model, False, monkeypatch)
            shared = _mine(compiled, model, True, monkeypatch)
            assert shared == scratch, f"{name} @ {model}"


def test_shared_and_scratch_formulas_have_identical_sizes():
    """Clause and variable counts agree exactly — sharing replays the same
    construction, it does not approximate it."""
    from repro.datatypes.registry import get_implementation
    from repro.core.session import CheckSession
    from repro.harness.catalog import get_test

    session = CheckSession(get_implementation("msn"))
    test = get_test("queue", "T0")
    for model_name in MODELS:
        model = get_model(model_name)
        compiled = session.compile(test, model)
        scratch = encode_test(compiled, model, share_encode=False)
        shared = encode_test(compiled, model, share_encode=True)
        assert shared.cnf.num_clauses == scratch.cnf.num_clauses, model_name
        assert shared.cnf.num_vars == scratch.cnf.num_vars, model_name
        assert shared.stats.cnf_clauses == scratch.stats.cnf_clauses
        assert shared.stats.order_pairs == scratch.stats.order_pairs


def test_session_verdicts_identical_with_sharing():
    """Full checks (assertion + inclusion query, counterexample decoding)
    are verdict-identical shared vs scratch, including the FAIL direction."""
    from repro.core.checker import CheckOptions, check
    from repro.datatypes.registry import get_implementation
    from repro.harness.catalog import get_test

    cases = [("msn", "T0"), ("msn-unfenced", "T0")]
    for impl_name, test_name in cases:
        implementation = get_implementation(impl_name)
        test = get_test("queue", test_name)
        for model in MODELS:
            scratch = check(
                implementation, test, model,
                CheckOptions(share_encode=False),
            )
            shared = check(
                implementation, test, model,
                CheckOptions(share_encode=True),
            )
            assert shared.passed == scratch.passed, (impl_name, model)
            assert (
                shared.stats.cnf_clauses == scratch.stats.cnf_clauses
            ), (impl_name, model)
            assert (
                shared.specification.observations
                == scratch.specification.observations
            )
            if not scratch.passed:
                assert shared.counterexample is not None
                assert (
                    shared.counterexample.observation
                    not in scratch.specification
                )


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_sharing_preserves_outcome_sets_on_fuzz_programs(seed):
    """Property form over generated litmus programs (relaxed model — the
    one where every reordering axiom is live)."""
    import os

    program = generate_program(random.Random(seed))
    compiled = program.compile()
    for model in ("sc", "relaxed"):
        os.environ["CHECKFENCE_SHARE_ENCODE"] = "0"
        try:
            scratch = mine_sat_outcomes(compiled, model)
        finally:
            os.environ["CHECKFENCE_SHARE_ENCODE"] = "1"
        shared = mine_sat_outcomes(compiled, model)
        assert shared == scratch, f"{program.spec()} @ {model}"


_DETERMINISM_SNIPPET = """\
from repro.core.session import CheckSession
from repro.datatypes.registry import get_implementation
from repro.encoding.formula import encode_test
from repro.harness.catalog import get_test
from repro.memorymodel.base import get_model

session = CheckSession(get_implementation("msn"))
test = get_test("queue", "T0")
for model_name in ["sc", "tso", "relaxed"]:
    model = get_model(model_name)
    compiled = session.compile(test, model)
    encoded = encode_test(compiled, model, share_encode=True)
    print(model_name, encoded.cnf.num_vars, encoded.cnf.num_clauses,
          encoded.stats.skeleton_shared)
"""


def test_two_process_determinism(src_on_subprocess_path):
    """Two independent processes produce byte-identical formula statistics
    on the shared path — no hidden iteration-order or hash-seed
    dependence (PYTHONHASHSEED is left random on purpose)."""
    def run():
        return subprocess.run(
            [sys.executable, "-c", _DETERMINISM_SNIPPET],
            capture_output=True, text=True, check=True,
        ).stdout

    first, second = run(), run()
    assert first == second
    assert "relaxed" in first
    # The sweep reused the memoized skeleton on the later models.
    assert first.strip().splitlines()[-1].endswith("True")
