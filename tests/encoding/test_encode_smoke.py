"""End-to-end tests of the encoding pipeline on tiny hand-made data types.

These tests exercise compile_test + encode_test + the SAT solver directly
(without the checker layer) and validate the encoding against facts that can
be worked out by hand: which observations are reachable under Seriality,
sequential consistency, and Relaxed.
"""

import pytest

from repro.datatypes.spec import DataTypeImplementation, OperationSpec
from repro.encoding import compile_test, encode_test
from repro.lsl import Invocation, SymbolicTest
from repro.memorymodel import RELAXED, SEQUENTIAL_CONSISTENCY, SERIAL, TSO


REGISTER_SOURCE = """
int cell;

void write_cell(int v) {
    cell = v;
}

int read_cell() {
    return cell;
}
"""

REGISTER = DataTypeImplementation(
    name="register",
    description="a single shared memory cell",
    source=REGISTER_SOURCE,
    operations={
        "write": OperationSpec("write", "write_cell", num_value_args=1),
        "read": OperationSpec("read", "read_cell", has_return=True),
    },
)


SB_SOURCE = """
int x;
int y;

int sb_left() {
    x = 1;
    return y;
}

int sb_right() {
    y = 1;
    return x;
}

int sb_left_fenced() {
    x = 1;
    fence("store-load");
    return y;
}

int sb_right_fenced() {
    y = 1;
    fence("store-load");
    return x;
}
"""

SB = DataTypeImplementation(
    name="store-buffering",
    description="the classic store buffering litmus test as two operations",
    source=SB_SOURCE,
    operations={
        "left": OperationSpec("left", "sb_left", has_return=True),
        "right": OperationSpec("right", "sb_right", has_return=True),
        "left_fenced": OperationSpec("left_fenced", "sb_left_fenced", has_return=True),
        "right_fenced": OperationSpec("right_fenced", "sb_right_fenced", has_return=True),
    },
)


def observation_reachable(encoded, observation) -> bool:
    """Ask the solver whether a concrete observation can occur."""
    handles = encoded.observation_equals(observation)
    return bool(encoded.solve(assumptions=handles))


def enumerate_observations(encoded, limit=64):
    """Enumerate all reachable observations by blocking clauses."""
    seen = []
    while len(seen) < limit and encoded.solve():
        observation = encoded.decode_observation(encoded.model_values())
        seen.append(observation)
        encoded.block_observation(observation)
    return seen


class TestSharedRegister:
    def _compiled(self):
        test = SymbolicTest(
            name="wr",
            threads=[[Invocation("write", (None,))], [Invocation("read")]],
        )
        return compile_test(REGISTER, test)

    def test_statistics_reasonable(self):
        compiled = self._compiled()
        stats = compiled.size_statistics()
        assert stats["loads"] == 1
        assert stats["stores"] == 1
        assert stats["invocations"] == 2

    @pytest.mark.parametrize("model", [SERIAL, SEQUENTIAL_CONSISTENCY, RELAXED, TSO])
    def test_observation_sets_match_hand_analysis(self, model):
        # Observation = (write argument, read return value).
        compiled = self._compiled()
        encoded = encode_test(compiled, model)
        observations = set(enumerate_observations(encoded))
        assert observations == {(0, 0), (1, 0), (1, 1)}

    def test_unreachable_observation(self):
        compiled = self._compiled()
        encoded = encode_test(compiled, SEQUENTIAL_CONSISTENCY)
        # The read can never return 1 when the write argument was 0.
        assert not observation_reachable(encoded, (0, 1))


class TestStoreBuffering:
    def _encode(self, model, fenced=False):
        ops = ("left_fenced", "right_fenced") if fenced else ("left", "right")
        test = SymbolicTest(
            name="sb",
            threads=[[Invocation(ops[0])], [Invocation(ops[1])]],
        )
        compiled = compile_test(SB, test)
        return encode_test(compiled, model)

    def test_serial_observations(self):
        encoded = self._encode(SERIAL)
        observations = set(enumerate_observations(encoded))
        assert observations == {(0, 1), (1, 0)}

    def test_sc_allows_one_one_but_not_zero_zero(self):
        encoded = self._encode(SEQUENTIAL_CONSISTENCY)
        assert observation_reachable(encoded, (1, 1))
        encoded = self._encode(SEQUENTIAL_CONSISTENCY)
        assert not observation_reachable(encoded, (0, 0))

    def test_relaxed_allows_zero_zero(self):
        encoded = self._encode(RELAXED)
        assert observation_reachable(encoded, (0, 0))

    def test_tso_allows_zero_zero(self):
        encoded = self._encode(TSO)
        assert observation_reachable(encoded, (0, 0))

    def test_store_load_fence_restores_sc_result(self):
        encoded = self._encode(RELAXED, fenced=True)
        assert not observation_reachable(encoded, (0, 0))
        encoded = self._encode(RELAXED, fenced=True)
        assert observation_reachable(encoded, (1, 1))


class TestNotInGuard:
    """The guard-literal alternative to permanent blocking clauses: the
    constraint only bites while the guard is assumed, so the same encoding
    stays reusable for other queries afterwards."""

    def _encode(self):
        test = SymbolicTest(
            name="sb",
            threads=[[Invocation("left")], [Invocation("right")]],
        )
        return encode_test(compile_test(SB, test), SERIAL)

    def test_guard_excludes_set_only_while_assumed(self):
        encoded = self._encode()
        guard = encoded.not_in_guard({(0, 1), (1, 0)})
        # Serial store-buffering only produces (0,1) and (1,0): excluding
        # both under the guard leaves nothing.
        assert encoded.solve(assumptions=[guard]) is False
        # Without the guard the formula is untouched.
        assert encoded.solve() is True
        assert observation_reachable(encoded, (0, 1))

    def test_guard_is_cached_per_observation_set(self):
        encoded = self._encode()
        first = encoded.not_in_guard({(0, 1)})
        again = encoded.not_in_guard({(1, 0), (0, 1)} - {(1, 0)})
        other = encoded.not_in_guard({(1, 0)})
        assert first == again
        assert first != other
        clauses_before = encoded.cnf.num_clauses
        encoded.not_in_guard({(0, 1)})
        assert encoded.cnf.num_clauses == clauses_before

    def test_partial_exclusion_leaves_the_rest(self):
        encoded = self._encode()
        guard = encoded.not_in_guard({(0, 1)})
        assert encoded.solve(assumptions=[guard]) is True
        observation = encoded.decode_observation(encoded.model_values())
        assert observation == (1, 0)
