"""The conflict-aware (pruned) memory-order encoding.

Three layers of protection for the rewrite of ``repro.encoding.memory``:

* **size regression ceilings** — order-variable and transitivity-clause
  counts of representative catalog tests are pinned to ceilings, so the
  static resolution / conflict restriction / pruned transitivity cannot
  silently regress back toward the dense construction;
* **dense-vs-pruned differential** — the mined outcome set of every litmus
  catalog test under every memory model must be identical under both
  constructions (the operational oracle covers the same ground in
  ``tests/oracle/``; this covers the dense encoder directly);
* **mechanics** — static resolution facts, constant-folded ``order()``,
  dead pairs, topological counterexample decoding, and the
  assumption-lowering/backend-sync ordering fix in ``EncodedTest.solve``.
"""

import pytest

from repro.datatypes.registry import category_of, get_implementation
from repro.encoding import compile_test, encode_test
from repro.encoding.memory import dense_order_enabled
from repro.encoding.testprogram import INIT_THREAD
from repro.harness.catalog import get_test
from repro.litmus.catalog import available_litmus_tests, compiled_litmus
from repro.lsl import Invocation, SymbolicTest
from repro.memorymodel.base import available_models, get_model
from repro.sat.circuit import Circuit

MODELS = ["serial", "sc", "tso", "pso", "relaxed"]


def _compiled_catalog(implementation_name: str, test_name: str):
    implementation = get_implementation(implementation_name)
    test = get_test(category_of(implementation_name), test_name)
    return compile_test(implementation, test)


def _mine(encoded, limit=512):
    outcomes = set()
    while encoded.solve():
        observation = encoded.decode_observation(encoded.model_values())
        assert observation not in outcomes, "solver returned a blocked obs"
        outcomes.add(observation)
        encoded.block_observation(observation)
        assert len(outcomes) <= limit
    return outcomes


class TestSizeCeilings:
    """Pinned ceilings (~15% above the current values) so pruning quality
    cannot silently regress; the dense construction would blow every one
    of them by a wide margin."""

    #: (implementation, test, model) -> (max order vars, max transitivity
    #: clauses, max total CNF clauses).  Dense values for comparison:
    #: msn/T0 has 325 pairs (=325 dense vars) and 15600 dense transitivity
    #: clauses.
    CEILINGS = {
        ("msn", "T0", "relaxed"): (125, 850, 4500),
        ("msn", "T0", "serial"): (140, 1400, 6300),
        ("ms2", "T0", "relaxed"): (145, 1150, 3300),
        ("harris", "Sar", "relaxed"): (300, 3200, 28500),
        ("snark", "D0", "relaxed"): (350, 4200, 24800),
        ("lazylist", "Sac", "relaxed"): (385, 5100, 38500),
    }

    @pytest.mark.parametrize("case", sorted(CEILINGS))
    def test_catalog_sizes_stay_under_ceiling(self, case):
        implementation, test_name, model = case
        max_vars, max_transitivity, max_clauses = self.CEILINGS[case]
        encoded = encode_test(
            _compiled_catalog(implementation, test_name),
            get_model(model),
            dense_order=False,
        )
        stats = encoded.stats
        assert stats.order_vars <= max_vars
        assert stats.transitivity_clauses <= max_transitivity
        assert stats.cnf_clauses <= max_clauses
        # The static resolver must be doing real work on catalog tests.
        assert stats.order_pairs_static > 0
        assert stats.order_vars < stats.order_pairs

    def test_iriw_order_structure_is_tiny(self):
        """IRIW under Relaxed: 45 pairs collapse to a handful of live
        variables, yet totality still forbids the Fig. 2 outcome (checked
        functionally in tests/litmus)."""
        compiled = compiled_litmus(available_litmus_tests()["iriw-fenced"])
        encoded = encode_test(compiled, get_model("relaxed"), dense_order=False)
        assert encoded.stats.order_pairs == 45
        assert encoded.stats.order_vars <= 10
        assert encoded.stats.cnf_clauses <= 100

    def test_transitivity_never_exceeds_a_third_of_dense(self):
        """Two clauses per unordered triangle vs six per ordered triple:
        even a fully live support graph stays under dense/3."""
        compiled = _compiled_catalog("msn", "T0")
        model = get_model("relaxed")
        pruned = encode_test(compiled, model, dense_order=False)
        dense = encode_test(compiled, model, dense_order=True)
        assert pruned.stats.transitivity_clauses * 3 <= (
            dense.stats.transitivity_clauses
        )


class TestDenseVsPrunedDifferential:
    """Identical mined outcome sets across the litmus catalog x all models."""

    @pytest.mark.parametrize("model", MODELS)
    def test_litmus_catalog_outcome_sets_match(self, model):
        for name, litmus in available_litmus_tests().items():
            compiled = compiled_litmus(litmus)
            dense = _mine(encode_test(compiled, get_model(model),
                                      dense_order=True))
            pruned = _mine(encode_test(compiled, get_model(model),
                                       dense_order=False))
            assert dense == pruned, (
                f"{name} @ {model}: dense-only {sorted(dense - pruned)}, "
                f"pruned-only {sorted(pruned - dense)}"
            )

    def test_catalog_check_verdict_matches(self):
        """A full checker run (spec mining + assertion + inclusion) agrees
        on a known-failing cell: msn-unfenced/T0 fails Relaxed both ways."""
        from repro.core.checker import CheckFence, CheckOptions

        verdicts = {}
        for dense in (False, True):
            checker = CheckFence(
                get_implementation("msn-unfenced"),
                CheckOptions(dense_order=dense),
            )
            result = checker.check(get_test("queue", "T0"), "relaxed")
            verdicts[dense] = result.passed
            assert result.stats.dense_order == dense
        assert verdicts[False] == verdicts[True] == False  # noqa: E712


class TestStaticResolution:
    def _encoded(self, model_name, dense=False):
        compiled = compiled_litmus(
            available_litmus_tests()["message-passing"]
        )
        return encode_test(compiled, get_model(model_name), dense_order=dense)

    def test_preserved_program_order_is_constant(self):
        encoded = self._encoded("sc")
        order = encoded.order
        position = {a.index: i for i, a in enumerate(order.accesses)}
        for thread_encoding in encoded.threads:
            accesses = sorted(thread_encoding.accesses, key=lambda a: a.seq)
            for i, first in enumerate(accesses):
                for second in accesses[i + 1:]:
                    handle = order.order(
                        position[first.index], position[second.index]
                    )
                    assert handle == Circuit.TRUE

    def test_init_accesses_are_statically_first(self):
        # msn/T0 initializes the queue on the init thread.
        encoded = encode_test(
            _compiled_catalog("msn", "T0"), get_model("relaxed"),
            dense_order=False,
        )
        order = encoded.order
        position = {a.index: i for i, a in enumerate(order.accesses)}
        init = [a for a in order.accesses if a.thread == INIT_THREAD]
        rest = [a for a in order.accesses if a.thread != INIT_THREAD]
        assert init and rest
        for first in init:
            for second in rest:
                assert order.order(
                    position[first.index], position[second.index]
                ) == Circuit.TRUE
                # ... and the reverse direction folds to FALSE.
                assert order.order(
                    position[second.index], position[first.index]
                ) == Circuit.FALSE

    def test_dead_pairs_raise_and_resolve_to_none(self):
        # Two threads touching distinct locations with no fences: the
        # cross-thread pair is order-irrelevant.
        source = """
        int x;
        int y;
        void store_x() { x = 1; }
        void store_y() { y = 1; }
        """
        from repro.datatypes.spec import DataTypeImplementation, OperationSpec

        implementation = DataTypeImplementation(
            name="disjoint",
            description="two disjoint stores",
            source=source,
            operations={
                "sx": OperationSpec("sx", "store_x"),
                "sy": OperationSpec("sy", "store_y"),
            },
        )
        test = SymbolicTest(
            name="disjoint",
            threads=[[Invocation("sx")], [Invocation("sy")]],
        )
        encoded = encode_test(
            compile_test(implementation, test), get_model("relaxed"),
            dense_order=False,
        )
        order = encoded.order
        position = {a.index: i for i, a in enumerate(order.accesses)}
        non_init = [a for a in order.accesses if a.thread != INIT_THREAD]
        assert len(non_init) == 2
        i, j = (position[a.index] for a in non_init)
        assert order.resolved(i, j) is None
        with pytest.raises(KeyError):
            order.order(i, j)
        # Dense mode keeps a variable for the same pair.
        dense = encode_test(
            compile_test(implementation, test), get_model("relaxed"),
            dense_order=True,
        )
        positions = {
            a.index: k for k, a in enumerate(dense.order.accesses)
        }
        i, j = (positions[a.index] for a in dense.order.accesses
                if a.thread != INIT_THREAD)
        assert dense.order.resolved(i, j) is not None

    def test_dense_order_env_fallback(self, monkeypatch):
        monkeypatch.delenv("CHECKFENCE_DENSE_ORDER", raising=False)
        assert dense_order_enabled(None) is False
        assert dense_order_enabled(True) is True
        monkeypatch.setenv("CHECKFENCE_DENSE_ORDER", "1")
        assert dense_order_enabled(None) is True
        assert dense_order_enabled(False) is False


class TestCounterexampleDecoding:
    def test_trace_is_a_linear_extension_of_the_model_order(self):
        """Every ordered fact the solver committed to is preserved by the
        topologically sorted trace."""
        from repro.core.checker import CheckFence, CheckOptions

        checker = CheckFence(
            get_implementation("msn-unfenced"), CheckOptions()
        )
        result = checker.check(get_test("queue", "T0"), "relaxed")
        assert not result.passed
        trace = result.counterexample
        assert trace is not None and trace.steps
        # Re-encode and re-solve to get a model + decoding we can inspect.
        compiled = checker.compile(get_test("queue", "T0"), "relaxed")
        encoded = encode_test(compiled, get_model("relaxed"),
                              dense_order=False)
        assert encoded.solve()
        model = encoded.model_values()
        decoded = encoded.decode_memory_order(model)
        position = {a.index: i for i, a in enumerate(encoded.order.accesses)}
        rank = {a.index: i for i, a in enumerate(decoded)}
        for x in decoded:
            for y in decoded:
                if x.index == y.index:
                    continue
                handle = encoded.order.resolved(
                    position[x.index], position[y.index]
                )
                if handle is None:
                    continue
                ordered_before = encoded.ctx.lowering.evaluate(handle, model)
                if ordered_before:
                    assert rank[x.index] < rank[y.index]

    def test_dense_and_pruned_traces_have_same_step_multiset(self):
        from repro.core.inclusion import run_inclusion_check
        from repro.core.specification import mine_specification

        compiled = _compiled_catalog("msn-unfenced", "T0")
        model = get_model("relaxed")
        spec = mine_specification(compiled)
        labels = {}
        for dense in (False, True):
            outcome = run_inclusion_check(
                compiled, model, spec, dense_order=dense
            )
            assert not outcome.passed
            trace = outcome.counterexample
            labels[dense] = sorted(
                (step.kind, step.location) for step in trace.steps
            )
            # Positions are contiguous whatever the construction.
            assert [step.position for step in trace.steps] == list(
                range(len(trace.steps))
            )


class TestSolveSyncRegression:
    """EncodedTest.solve must never hand the backend an assumption literal
    whose defining clauses have not been synced (the assumption handles are
    lowered between two backend syncs)."""

    def _encoded(self):
        litmus = available_litmus_tests()["store-buffering"]
        return encode_test(
            compiled_litmus(litmus), get_model("serial"), dense_order=False
        )

    def test_fresh_composite_assumption_after_first_solve(self):
        encoded = self._encoded()
        assert encoded.solve() is True
        # Build a *new* composite node after the backend has synced: its
        # Tseitin clauses do not exist yet when solve() is entered.
        circuit = encoded.ctx.circuit
        handles = encoded.observation_equals((0, 1))
        both = circuit.and_many(handles)
        contradiction = circuit.and_(both, -handles[0])
        assert encoded.solve(assumptions=[contradiction]) is False
        # Every clause the lowering produced is in the backend.
        assert encoded._synced_clauses == len(encoded.cnf.clauses)
        # The formula itself is untouched by the failed assumption.
        assert encoded.solve() is True

    def test_backend_is_synced_before_and_after_lowering(self, monkeypatch):
        encoded = self._encoded()
        observed = []
        original = encoded.ctx.lowering.literal

        def recording_literal(handle):
            observed.append(encoded._synced_clauses == len(encoded.cnf.clauses))
            return original(handle)

        monkeypatch.setattr(encoded.ctx.lowering, "literal", recording_literal)
        handles = encoded.observation_equals((1, 0))
        composite = encoded.ctx.circuit.and_many(handles)
        assert encoded.solve(assumptions=[composite]) is True
        # The first lowering call ran against a fully synced backend...
        assert observed and observed[0] is True
        # ...and whatever it appended was synced again before solving.
        assert encoded._synced_clauses == len(encoded.cnf.clauses)


class TestSessionDenseKnob:
    def test_session_resolves_and_keys_on_the_knob(self):
        from repro.core.checker import CheckOptions
        from repro.core.session import CheckSession

        implementation = get_implementation("msn")
        test = get_test("queue", "T0")
        dense_session = CheckSession(
            implementation, CheckOptions(dense_order=True)
        )
        pruned_session = CheckSession(implementation, CheckOptions())
        assert dense_session.dense_order is True
        assert pruned_session.dense_order is False
        dense_encoded = dense_session.encoded(test, "relaxed")
        pruned_encoded = pruned_session.encoded(test, "relaxed")
        assert dense_encoded.stats.dense_order is True
        assert pruned_encoded.stats.dense_order is False
        assert (
            pruned_encoded.stats.cnf_clauses < dense_encoded.stats.cnf_clauses
        )
        key_dense = dense_session._encoded_key(test, get_model("relaxed"))
        key_pruned = pruned_session._encoded_key(test, get_model("relaxed"))
        assert key_dense != key_pruned

    def test_litmus_matrix_forwards_the_knob(self):
        """`checkfence litmus --dense-order` really runs the dense
        construction (the knob is forwarded through the matrix cells)."""
        from repro.core.checker import CheckOptions
        from repro.harness.matrix import litmus_cells, run_matrix

        cells = litmus_cells(["sc"])[:2]
        dense = run_matrix(cells, options=CheckOptions(dense_order=True))
        pruned = run_matrix(cells, options=CheckOptions())
        assert dense.ok and pruned.ok
        for dense_cell, pruned_cell in zip(dense.results, pruned.results):
            assert dense_cell.stats["order"]["dense_order"] is True
            assert pruned_cell.stats["order"]["dense_order"] is False
            assert dense_cell.verdict == pruned_cell.verdict
            assert (
                pruned_cell.stats["order"]["cnf_clauses"]
                <= dense_cell.stats["order"]["cnf_clauses"]
            )

    def test_all_models_agree_between_sessions(self):
        """Full sweep verdicts match between a dense and a pruned session."""
        from repro.core.checker import CheckOptions
        from repro.core.session import CheckSession

        implementation = get_implementation("msn")
        test = get_test("queue", "T0")
        models = [m for m in available_models()]
        dense = CheckSession(implementation, CheckOptions(dense_order=True))
        pruned = CheckSession(implementation, CheckOptions(dense_order=False))
        dense_verdicts = [r.passed for r in dense.sweep(test, models)]
        pruned_verdicts = [r.passed for r in pruned.sweep(test, models)]
        assert dense_verdicts == pruned_verdicts
