"""CLI tests for resource budgets, degraded exit codes, and --resume."""

import json

import pytest

from repro.cli import main
from repro.core import faults, limits


class TestCheckBudget:
    def test_timeout_flag_degrades_to_exit_3(self, capsys):
        code = main([
            "check", "--impl", "msn", "--test", "T0", "--model", "sc",
            "--timeout", "0.0000001",
        ])
        assert code == 3
        assert "[TIMEOUT]" in capsys.readouterr().out

    def test_memory_limit_flag_degrades_to_oom(self, capsys):
        if limits.current_rss_bytes() is None:
            pytest.skip("no RSS probe on this platform")
        code = main([
            "check", "--impl", "msn", "--test", "T0", "--model", "sc",
            "--memory-limit", "1",
        ])
        assert code == 3
        assert "[OOM]" in capsys.readouterr().out

    def test_timeout_env_fallback(self, capsys, monkeypatch):
        monkeypatch.setenv(limits.TIMEOUT_ENV, "0.0000001")
        code = main([
            "check", "--impl", "msn", "--test", "T0", "--model", "sc",
        ])
        assert code == 3
        assert "[TIMEOUT]" in capsys.readouterr().out

    def test_generous_budget_still_passes(self, capsys):
        code = main([
            "check", "--impl", "msn", "--test", "T0", "--model", "sc",
            "--timeout", "3600",
        ])
        assert code == 0
        assert "[PASS]" in capsys.readouterr().out


class TestMatrixDegradedExit:
    def test_timed_out_cell_exits_3_not_1(self, capsys, monkeypatch):
        """Exit 3 (budget ran out) must be distinguishable from exit 1
        (a bug was found): passing cells plus one TIMEOUT is 3."""
        monkeypatch.setenv(
            faults.FAULT_ENV, "cell-timeout:litmus/store-buffering@sc"
        )
        code = main([
            "matrix", "--litmus", "--models", "sc", "--quiet",
            "--json", "-",
        ])
        captured = capsys.readouterr()
        assert code == 3
        payload = json.loads(captured.out)
        verdicts = {
            cell["test"]: cell["verdict"] for cell in payload["cells"]
        }
        assert verdicts["store-buffering"] == "TIMEOUT"
        assert "TIMEOUT in litmus/store-buffering@sc" in captured.err

    def test_real_failure_still_exits_1(self, capsys, monkeypatch):
        """A FAIL alongside a TIMEOUT keeps the bug-found exit code."""
        monkeypatch.setenv(faults.FAULT_ENV, "cell-timeout:msn/T0@sc")
        code = main([
            "matrix", "--impls", "msn,msn-unfenced", "--tests", "T0",
            "--models", "sc,relaxed", "--quiet",
        ])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out


class TestMatrixJournalCli:
    def test_resume_requires_journal(self, capsys):
        code = main(["matrix", "--litmus", "--models", "sc", "--resume"])
        assert code == 2
        assert "--resume requires --journal" in capsys.readouterr().err

    def test_journal_roundtrip(self, tmp_path, capsys):
        journal = tmp_path / "m.jsonl"
        code = main([
            "matrix", "--litmus", "--models", "sc", "--quiet",
            "--journal", str(journal),
        ])
        assert code == 0
        assert journal.exists()
        capsys.readouterr()
        code = main([
            "matrix", "--litmus", "--models", "sc", "--quiet",
            "--journal", str(journal), "--resume",
        ])
        assert code == 0
        assert "resumed from journal" in capsys.readouterr().out

    def test_mismatched_journal_is_usage_error(self, tmp_path, capsys):
        journal = tmp_path / "m.jsonl"
        assert main([
            "matrix", "--litmus", "--models", "sc", "--quiet",
            "--journal", str(journal),
        ]) == 0
        capsys.readouterr()
        code = main([
            "matrix", "--litmus", "--models", "tso", "--quiet",
            "--journal", str(journal), "--resume",
        ])
        assert code == 2
        assert "different cell set" in capsys.readouterr().err


class TestFuzzJournalCli:
    def test_resume_requires_journal(self, capsys):
        code = main(["fuzz", "--budget", "1", "--resume"])
        assert code == 2
        assert "--resume requires --journal" in capsys.readouterr().err

    def test_fuzz_journal_resume_roundtrip(self, tmp_path, capsys):
        """The corpus is deterministic from the seed, so a resumed
        campaign sees the identical cell set and restores from the
        journal."""
        journal = tmp_path / "f.jsonl"
        args = [
            "fuzz", "--budget", "2", "--seed", "11", "--models", "sc",
            "--jobs", "1", "--quiet", "--journal", str(journal),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--resume"]) == 0
        assert "resumed from journal" in capsys.readouterr().out
