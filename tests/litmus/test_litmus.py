"""Tests for the litmus catalog (Fig. 2 and the classic shapes)."""

import pytest

from repro.litmus import available_litmus_tests, iriw_allowed, observation_allowed
from repro.memorymodel import (
    PSO,
    RELAXED,
    SEQUENTIAL_CONSISTENCY,
    SERIAL,
    TSO,
    available_models,
    get_model,
    is_stronger,
)


class TestModelRegistry:
    def test_lookup_by_name(self):
        assert get_model("relaxed") is RELAXED
        assert get_model("SC").name == "sc"
        assert get_model(RELAXED) is RELAXED
        with pytest.raises(KeyError):
            get_model("powerpc")

    def test_available_models(self):
        names = [m.name for m in available_models()]
        assert names == ["serial", "sc", "tso", "pso", "relaxed"]

    def test_strength_ordering(self):
        assert is_stronger(SERIAL, SEQUENTIAL_CONSISTENCY)
        assert is_stronger(SEQUENTIAL_CONSISTENCY, TSO)
        assert is_stronger(TSO, PSO)
        assert is_stronger(PSO, RELAXED)
        assert not is_stronger(RELAXED, SEQUENTIAL_CONSISTENCY)

    def test_fence_kind_helpers(self):
        from repro.lsl import FenceKind

        assert FenceKind.LOAD_STORE.orders_before == ("load",)
        assert FenceKind.LOAD_STORE.orders_after == ("store",)
        assert set(FenceKind.FULL.orders_before) == {"load", "store"}


class TestLitmusOutcomes:
    def setup_method(self):
        self.tests = available_litmus_tests()

    def test_catalog_contents(self):
        assert {"store-buffering", "message-passing", "load-buffering",
                "iriw-fenced"} <= set(self.tests)

    def test_store_buffering(self):
        litmus = self.tests["store-buffering"]
        assert not observation_allowed(litmus, "sc")
        assert observation_allowed(litmus, "tso")
        assert observation_allowed(litmus, "relaxed")

    def test_store_buffering_fences_restore_order(self):
        litmus = self.tests["store-buffering+fences"]
        assert not observation_allowed(litmus, "relaxed")

    def test_message_passing(self):
        litmus = self.tests["message-passing"]
        assert not observation_allowed(litmus, "sc")
        assert not observation_allowed(litmus, "tso")
        assert observation_allowed(litmus, "pso")
        assert observation_allowed(litmus, "relaxed")

    def test_message_passing_fences(self):
        litmus = self.tests["message-passing+fences"]
        assert not observation_allowed(litmus, "relaxed")

    def test_load_buffering(self):
        litmus = self.tests["load-buffering"]
        assert not observation_allowed(litmus, "sc")
        assert not observation_allowed(litmus, "tso")
        assert observation_allowed(litmus, "relaxed")

    def test_load_buffering_fences(self):
        litmus = self.tests["load-buffering+fences"]
        assert not observation_allowed(litmus, "relaxed")

    def test_fig2_iriw_forbidden_on_relaxed(self):
        """Fig. 2: Relaxed orders all stores, so the two fenced readers can
        never disagree on the order of the two writes."""
        assert not iriw_allowed("relaxed")
        assert not iriw_allowed("sc")
