"""Tests for the litmus catalog (Fig. 2 and the classic shapes)."""

import pytest

from repro.litmus import available_litmus_tests, iriw_allowed, observation_allowed
from repro.memorymodel import (
    PSO,
    RELAXED,
    SEQUENTIAL_CONSISTENCY,
    SERIAL,
    TSO,
    available_models,
    get_model,
    is_stronger,
)


class TestModelRegistry:
    def test_lookup_by_name(self):
        assert get_model("relaxed") is RELAXED
        assert get_model("SC").name == "sc"
        assert get_model(RELAXED) is RELAXED
        with pytest.raises(KeyError):
            get_model("powerpc")

    def test_available_models(self):
        names = [m.name for m in available_models()]
        assert names == ["serial", "sc", "tso", "pso", "relaxed"]

    def test_strength_ordering(self):
        assert is_stronger(SERIAL, SEQUENTIAL_CONSISTENCY)
        assert is_stronger(SEQUENTIAL_CONSISTENCY, TSO)
        assert is_stronger(TSO, PSO)
        assert is_stronger(PSO, RELAXED)
        assert not is_stronger(RELAXED, SEQUENTIAL_CONSISTENCY)

    def test_fence_kind_helpers(self):
        from repro.lsl import FenceKind

        assert FenceKind.LOAD_STORE.orders_before == ("load",)
        assert FenceKind.LOAD_STORE.orders_after == ("store",)
        assert set(FenceKind.FULL.orders_before) == {"load", "store"}


class TestLitmusOutcomes:
    def setup_method(self):
        self.tests = available_litmus_tests()

    def test_catalog_contents(self):
        assert {"store-buffering", "message-passing", "load-buffering",
                "iriw-fenced"} <= set(self.tests)

    def test_store_buffering(self):
        litmus = self.tests["store-buffering"]
        assert not observation_allowed(litmus, "sc")
        assert observation_allowed(litmus, "tso")
        assert observation_allowed(litmus, "relaxed")

    def test_store_buffering_fences_restore_order(self):
        litmus = self.tests["store-buffering+fences"]
        assert not observation_allowed(litmus, "relaxed")

    def test_message_passing(self):
        litmus = self.tests["message-passing"]
        assert not observation_allowed(litmus, "sc")
        assert not observation_allowed(litmus, "tso")
        assert observation_allowed(litmus, "pso")
        assert observation_allowed(litmus, "relaxed")

    def test_message_passing_fences(self):
        litmus = self.tests["message-passing+fences"]
        assert not observation_allowed(litmus, "relaxed")

    def test_load_buffering(self):
        litmus = self.tests["load-buffering"]
        assert not observation_allowed(litmus, "sc")
        assert not observation_allowed(litmus, "tso")
        assert observation_allowed(litmus, "relaxed")

    def test_load_buffering_fences(self):
        litmus = self.tests["load-buffering+fences"]
        assert not observation_allowed(litmus, "relaxed")

    def test_fig2_iriw_forbidden_on_relaxed(self):
        """Fig. 2: Relaxed orders all stores, so the two fenced readers can
        never disagree on the order of the two writes."""
        assert not iriw_allowed("relaxed")
        assert not iriw_allowed("sc")


class TestBackendEquivalence:
    """The litmus verdict matrix must be bit-identical across solver
    backends (internal CDCL vs the DIMACS subprocess path)."""

    @pytest.fixture(autouse=True)
    def _subprocess_path(self, src_on_subprocess_path):
        """The DIMACS side of the comparison spawns solver subprocesses."""

    def test_matrix_identical_across_backends(self, dimacs_cli_spec):
        dimacs_spec = dimacs_cli_spec
        models = ["sc", "tso", "pso", "relaxed"]
        internal_matrix = {}
        dimacs_matrix = {}
        for name, litmus in available_litmus_tests().items():
            if not litmus.observation:
                continue
            for model in models:
                internal_matrix[(name, model)] = observation_allowed(
                    litmus, model, backend_spec="internal"
                )
                dimacs_matrix[(name, model)] = observation_allowed(
                    litmus, model, backend_spec=dimacs_spec
                )
        assert internal_matrix == dimacs_matrix
        # Sanity: the matrix separates the models (not all-equal verdicts).
        assert True in internal_matrix.values()
        assert False in internal_matrix.values()


class TestCompiledCache:
    def test_variant_with_colliding_name_is_not_conflated(self):
        """A caller-supplied litmus variant reusing a catalog name must get
        its own compilation, not the cached catalog one."""
        import dataclasses

        catalog = available_litmus_tests()
        original = catalog["store-buffering"]
        fenced = catalog["store-buffering+fences"]
        # Same name as the unfenced test, but fenced thread bodies.
        variant = dataclasses.replace(
            original, threads=list(fenced.threads)
        )
        assert observation_allowed(original, "tso") is True
        assert observation_allowed(variant, "tso") is False
