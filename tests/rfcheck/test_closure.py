"""Unit tests of the incremental order closure underneath the rf engine."""

import pytest

from repro.rfcheck import ClosureBudgetExceeded, Gas, OrderClosure


class TestEdges:
    def test_transitive_closure_is_maintained(self):
        closure = OrderClosure(4)
        assert closure.add_edge(0, 1)
        assert closure.add_edge(1, 2)
        assert closure.holds(0, 2)
        assert closure.add_edge(2, 3)
        assert closure.holds(0, 3)
        assert not closure.holds(3, 0)

    def test_cycles_are_rejected(self):
        closure = OrderClosure(3)
        assert closure.add_edge(0, 1)
        assert closure.add_edge(1, 2)
        assert not closure.add_edge(2, 0)
        assert not closure.add_edge(0, 0)

    def test_duplicate_edges_are_idempotent(self):
        closure = OrderClosure(3)
        assert closure.add_edge(0, 1)
        assert closure.add_edge(0, 1)
        assert closure.holds(0, 1)

    def test_clone_is_independent(self):
        closure = OrderClosure(3)
        closure.add_edge(0, 1)
        copy = closure.clone()
        copy.add_edge(1, 2)
        assert copy.holds(0, 2)
        assert not closure.holds(0, 2)


class TestClauses:
    def test_satisfied_clause_is_dropped(self):
        closure = OrderClosure(3)
        closure.add_edge(0, 1)
        assert closure.add_clause((0, 1), (2, 0))
        assert closure.clauses == []

    def test_unit_propagation_forces_the_open_disjunct(self):
        closure = OrderClosure(3)
        closure.add_edge(0, 1)
        # (1 < 0) is cyclic, so (2 < 0) must be forced as an edge.
        assert closure.add_clause((1, 0), (2, 0))
        assert closure.holds(2, 0)

    def test_both_disjuncts_cyclic_refutes(self):
        closure = OrderClosure(3)
        closure.add_edge(0, 1)
        closure.add_edge(0, 2)
        assert not closure.add_clause((1, 0), (2, 0))

    def test_propagation_cascades(self):
        closure = OrderClosure(4)
        assert closure.add_clause((1, 0), (2, 3))
        # Closing 0 < 1 kills the first disjunct, forcing 2 < 3...
        assert closure.add_clause((3, 2), (0, 1))  # pending too
        assert closure.add_edge(0, 1)
        assert closure.holds(2, 3)

    def test_consistent_splits_residual_clauses(self):
        closure = OrderClosure(4)
        assert closure.add_clause((0, 1), (1, 0))
        assert closure.add_clause((2, 3), (3, 2))
        assert closure.propagate()
        assert closure.consistent(Gas(1000))

    def test_consistent_detects_unsatisfiable_residue(self):
        closure = OrderClosure(2)
        assert closure.add_clause((0, 1), (0, 1))
        closure.add_edge(1, 0)
        # Re-propagating with 1 < 0 in place refutes the clause.
        assert not closure.propagate() or not closure.consistent(Gas(1000))

    def test_gas_budget_raises(self):
        closure = OrderClosure(8)
        for u in range(0, 8, 2):
            closure.add_clause((u, u + 1), (u + 1, u))
        closure.propagate()
        with pytest.raises(ClosureBudgetExceeded):
            closure.consistent(Gas(1))
