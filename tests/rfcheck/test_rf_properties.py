"""Property tests of the rf engine over generated litmus programs.

Three properties, all over the PR-3 fuzz generator's program space:

* the rf engine's outcome set equals the operational enumerator's on every
  model (the in-process half of the three-way differential harness);
* memory-model monotonicity (Section 2.3.3): a stronger model's outcomes
  are a subset of a weaker model's;
* fences only ever forbid outcomes, never allow new ones.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.fuzz import FuzzProgram, generate_program
from repro.oracle import enumerate_outcomes
from repro.rfcheck import rfcheck_outcomes

#: Weakest to strongest.
CHAIN = ["relaxed", "pso", "tso", "sc", "serial"]


def random_program(seed: int) -> FuzzProgram:
    return generate_program(random.Random(seed))


def rf_outcomes(program: FuzzProgram, model: str):
    result = rfcheck_outcomes(program.compile(), model)
    assert result.ok, result.reason
    return result.outcomes


def strip_fences(program: FuzzProgram) -> FuzzProgram | None:
    threads = tuple(
        stripped
        for thread in program.threads
        if (stripped := tuple(op for op in thread if op.kind != "fence"))
    )
    if not threads:
        return None
    return FuzzProgram(threads=threads)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_rfcheck_matches_the_enumerator(seed):
    program = random_program(seed)
    compiled = program.compile()
    for model in CHAIN:
        oracle = enumerate_outcomes(compiled, model)
        rf = rfcheck_outcomes(compiled, model)
        assert oracle.ok, oracle.reason
        assert rf.ok, rf.reason
        assert rf.outcomes == oracle.outcomes, (
            f"{program.spec()} @ {model}: rfcheck and enumerator disagree"
        )


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_stronger_models_allow_subsets(seed):
    program = random_program(seed)
    sets = [rf_outcomes(program, model) for model in CHAIN]
    for weaker, stronger in zip(sets, sets[1:]):
        assert stronger <= weaker, (
            f"{program.spec()}: monotonicity violated between models"
        )


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_fences_only_forbid_outcomes(seed):
    program = random_program(seed)
    stripped = strip_fences(program)
    if stripped is None or stripped.spec() == program.spec():
        return
    for model in CHAIN:
        fenced = rf_outcomes(program, model)
        unfenced = rf_outcomes(stripped, model)
        assert fenced <= unfenced, (
            f"{program.spec()}: fences allowed a new outcome under {model}"
        )
