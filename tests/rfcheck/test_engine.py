"""The rf engine against the other engines and its own decision surface."""

import pytest

from repro.fuzz import FuzzProgram
from repro.litmus.catalog import available_litmus_tests, compiled_litmus
from repro.memorymodel.base import available_models
from repro.oracle import enumerate_outcomes
from repro.oracle.trace import TraceExtractor
from repro.rfcheck import (
    RfStructure,
    check_rf_assignment,
    rfcheck_outcomes,
)

MODELS = ["serial", "sc", "tso", "pso", "relaxed"]

SB_SPEC = "x=1 r0=y | y=1 r1=x"


def test_models_under_test_are_the_shipped_models():
    assert sorted(MODELS) == sorted(model.name for model in available_models())


@pytest.mark.parametrize("model", MODELS)
def test_litmus_catalog_agrees_with_enumerator(model):
    failures = []
    for name, litmus in available_litmus_tests().items():
        compiled = compiled_litmus(litmus)
        oracle = enumerate_outcomes(compiled, model)
        rf = rfcheck_outcomes(compiled, model)
        assert oracle.ok, f"{name}: enumerator inconclusive: {oracle.reason}"
        assert rf.ok, f"{name}: rfcheck inconclusive: {rf.reason}"
        if rf.outcomes != oracle.outcomes:
            failures.append(
                f"{name} @ {model}: rfcheck {sorted(rf.outcomes)} != "
                f"enumerator {sorted(oracle.outcomes)}"
            )
    assert not failures, "\n".join(failures)


class TestCheckRfAssignment:
    """The per-assignment decision procedure on the store-buffering shape."""

    def _structure(self, model):
        compiled = FuzzProgram.parse(SB_SPEC).compile()
        (trace,) = TraceExtractor(compiled).traces()
        return RfStructure(trace, model)

    def _init_assignment(self, structure):
        # Both loads read the initial value: the (0, 0) outcome.
        return {load.eid: ("init", None) for load in structure.loads}

    def test_both_reads_from_init_is_forbidden_under_sc(self):
        structure = self._structure("sc")
        assert not check_rf_assignment(
            structure, self._init_assignment(structure)
        )

    def test_both_reads_from_init_is_allowed_under_tso(self):
        structure = self._structure("tso")
        assert check_rf_assignment(
            structure, self._init_assignment(structure)
        )

    def test_reading_the_other_threads_store_cross_ways(self):
        # Both loads seeing the other thread's store is the (1, 1)
        # outcome: fine whenever operations interleave, but impossible
        # under Seriality, where one whole thread runs first and its own
        # load can only see the initial value.
        for model in MODELS:
            structure = self._structure(model)
            assignment = {}
            for load in structure.loads:
                (store,) = structure.stores_by_addr[load.addr]
                assignment[load.eid] = ("store", store.eid)
            expected = model != "serial"
            assert check_rf_assignment(structure, assignment) == expected, model

    def test_non_candidate_assignment_is_rejected(self):
        structure = self._structure("relaxed")
        assignment = self._init_assignment(structure)
        first = structure.loads[0]
        # A "forward" source does not exist for these loads (no own
        # earlier same-address store), so it is not a candidate.
        assignment[first.eid] = ("forward", 0)
        assert not check_rf_assignment(structure, assignment)


class TestBudgets:
    def test_check_budget_degrades_to_inconclusive(self):
        compiled = FuzzProgram.parse(SB_SPEC).compile()
        result = rfcheck_outcomes(compiled, "relaxed", max_checks=1)
        assert not result.ok
        assert "rf consistency checks" in result.reason
        with pytest.raises(RuntimeError):
            result.allows((0, 0))

    def test_step_budget_degrades_to_inconclusive(self):
        compiled = FuzzProgram.parse(SB_SPEC).compile()
        result = rfcheck_outcomes(compiled, "relaxed", max_steps=1)
        assert not result.ok

    def test_result_counts_work(self):
        compiled = FuzzProgram.parse(SB_SPEC).compile()
        result = rfcheck_outcomes(compiled, "sc")
        assert result.ok
        assert result.traces == 1
        assert result.assignments > 0
        assert result.checks > 0
        assert result.outcomes == {(0, 1), (1, 0), (1, 1)}


class TestSerialQuotient:
    def test_serial_forbids_interleaving_sb(self):
        compiled = FuzzProgram.parse(SB_SPEC).compile()
        result = rfcheck_outcomes(compiled, "serial")
        assert result.ok
        # Whole-invocation atomicity: one thread's (store; load) pair runs
        # entirely before the other's, so exactly one load sees a store
        # and the other sees the initial value.
        assert result.outcomes == {(0, 1), (1, 0)}
