"""Shared fixtures for test suites that spawn solver subprocesses."""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

#: Absolute path of the in-tree package root.
SRC = str(Path(__file__).resolve().parent.parent / "src")

#: The always-available DIMACS solver command: the in-tree solver behind a
#: competition-format subprocess pipe.
DIMACS_CLI_COMMAND = [sys.executable, "-m", "repro.sat.dimacs_cli"]

#: The same command as a ``--solver`` / backend spec string.
DIMACS_CLI_SPEC = "dimacs:" + " ".join(DIMACS_CLI_COMMAND)


@pytest.fixture
def dimacs_cli_command():
    """The in-tree DIMACS solver command, for DimacsBackend(command=...)."""
    return list(DIMACS_CLI_COMMAND)


@pytest.fixture
def dimacs_cli_spec():
    """The in-tree DIMACS solver as a backend spec string."""
    return DIMACS_CLI_SPEC


@pytest.fixture
def drop_same_address_axiom(monkeypatch):
    """Disable BOTH halves of the same-address store-order axiom (the
    statically resolved constant-address pairs and the symbolic
    implication) — the injected encoder bug the mutation-detection tests
    expect the differential oracle / fuzzer to catch."""
    from repro.encoding.memory import MemoryModelEncoder

    monkeypatch.setattr(
        MemoryModelEncoder, "_assert_same_address_order",
        lambda self: None,
    )
    monkeypatch.setattr(
        MemoryModelEncoder, "_same_address_static_edge",
        lambda self, first, second: False,
    )


@pytest.fixture
def src_on_subprocess_path(monkeypatch):
    """Make ``repro`` importable in spawned solver subprocesses, which do
    not inherit the parent's ``sys.path`` manipulation."""
    existing = os.environ.get("PYTHONPATH", "")
    if SRC not in existing.split(os.pathsep):
        monkeypatch.setenv(
            "PYTHONPATH", SRC + (os.pathsep + existing if existing else "")
        )
