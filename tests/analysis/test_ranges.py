"""Tests for allocation resolution and the range analysis."""

import pytest

from repro.analysis import (
    DisabledRanges,
    Inliner,
    RangeAnalysis,
    build_layout,
    resolve_allocations,
    unroll,
)
from repro.lang import compile_c
from repro.lsl import Alloc, iter_statements


QUEUE_SOURCE = """
typedef struct node {
    struct node *next;
    int value;
} node_t;

typedef struct queue {
    node_t *head;
    node_t *tail;
} queue_t;

queue_t queue;

extern node_t *new_node();

void init_queue() {
    node_t *node;
    node = new_node();
    node->next = NULL;
    node->value = 0;
    queue.head = node;
    queue.tail = node;
}

void enqueue(int value) {
    node_t *node;
    node_t *tail;
    node = new_node();
    node->value = value;
    node->next = NULL;
    tail = queue.tail;
    tail->next = node;
    queue.tail = node;
}
"""


def prepare(test_calls, bound=1):
    """Compile, inline the given calls as one thread each, unroll, link."""
    program = compile_c(QUEUE_SOURCE, "queue")
    inliner = Inliner(program)
    threads = []
    for index, (proc, args) in enumerate(test_calls):
        from repro.lsl import ConstAssign

        body = []
        arg_regs = []
        for argindex, value in enumerate(args):
            reg = f"t{index}_arg{argindex}"
            body.append(ConstAssign(reg, value))
            arg_regs.append(reg)
        body += inliner.inline_call(proc, tuple(arg_regs), (), prefix=f"t{index}::")
        threads.append(unroll(body, default_bound=bound).statements)
    layout = build_layout(program)
    allocation = resolve_allocations(threads, layout)
    return program, threads, layout, allocation


class TestAllocation:
    def test_each_alloc_gets_distinct_object(self):
        _, threads, layout, allocation = prepare(
            [("init_queue", []), ("enqueue", [1])]
        )
        allocs = [
            s for body in threads for s in iter_statements(body)
            if isinstance(s, Alloc)
        ]
        assert len(allocs) == 2
        bases = {allocation.base_for(a) for a in allocs}
        assert len(bases) == 2
        for base in bases:
            assert layout.info(base).is_heap

    def test_layout_contains_globals_first(self):
        program, _, layout, _ = prepare([("init_queue", [])])
        assert layout.global_base("queue") == 1
        assert layout.name_of(1) == "queue.head"
        assert layout.name_of(2) == "queue.tail"


class TestRangeAnalysis:
    def test_register_value_sets(self):
        _, threads, layout, allocation = prepare(
            [("init_queue", []), ("enqueue", [1])]
        )
        info = RangeAnalysis(layout, allocation).analyze(threads)
        # The queue.head cell can only hold its initial value (0) or the
        # address of the node allocated by init_queue.
        head_values = info.loc_values[layout.global_base("queue")]
        assert head_values is not None
        assert all(v == 0 or layout.info(v).is_heap for v in head_values)
        assert any(v != 0 and layout.info(v).is_heap for v in head_values)

    def test_alias_sets_prune_locations(self):
        _, threads, layout, allocation = prepare(
            [("init_queue", []), ("enqueue", [1])]
        )
        info = RangeAnalysis(layout, allocation).analyze(threads)
        # Find a store to node->value and check its address set is small.
        from repro.lsl import Store

        store_addrs = []
        for body in threads:
            for stmt in iter_statements(body):
                if isinstance(stmt, Store):
                    addresses = info.possible_addresses(stmt.addr)
                    store_addrs.append(addresses)
        assert all(a is not None for a in store_addrs)
        assert all(len(a) <= 4 for a in store_addrs)

    def test_width_covers_all_locations(self):
        _, threads, layout, allocation = prepare(
            [("init_queue", []), ("enqueue", [1])]
        )
        info = RangeAnalysis(layout, allocation).analyze(threads)
        assert (1 << info.width()) > layout.num_locations - 1

    def test_havoc_domain_includes_baseline(self):
        _, threads, layout, allocation = prepare([("enqueue", [1])])
        info = RangeAnalysis(layout, allocation).analyze(threads)
        heap_cells = [i for i in layout.valid_indices() if layout.info(i).is_heap]
        for cell in heap_cells:
            domain = info.location_domain(cell)
            assert domain is None or {0, 1} <= domain

    def test_choose_values_propagate(self):
        from repro.lsl import Choose, ConstAssign, Load, Store

        source = """
        int slot;
        void put(int v) { slot = v; }
        """
        program = compile_c(source, "choose")
        inliner = Inliner(program)
        body = [Choose("arg", (0, 1))] + inliner.inline_call("put", ("arg",), ())
        layout = build_layout(program)
        allocation = resolve_allocations([body], layout)
        info = RangeAnalysis(layout, allocation).analyze([body])
        slot = layout.global_base("slot")
        assert info.loc_values[slot] == {0, 1}

    def test_disabled_ranges_report_everything(self):
        _, threads, layout, allocation = prepare([("enqueue", [1])])
        info = DisabledRanges(layout)
        assert info.possible_addresses("anything") is None
        assert info.location_domain(1) is None
        assert info.width() >= 8

    def test_fixpoint_terminates_on_unrolled_arithmetic(self):
        source = """
        int total;
        void accumulate(int n) {
            int i = 0;
            while (i < n) {
                total = total + 1;
                i = i + 1;
            }
        }
        """
        program = compile_c(source, "acc")
        inliner = Inliner(program)
        from repro.lsl import ConstAssign

        body = [ConstAssign("n", 3)] + inliner.inline_call("accumulate", ("n",), ())
        unrolled = unroll(body, default_bound=5).statements
        layout = build_layout(program)
        allocation = resolve_allocations([unrolled], layout)
        info = RangeAnalysis(layout, allocation).analyze([unrolled])
        total = layout.global_base("total")
        assert info.loc_values[total] is not None
        assert max(info.loc_values[total]) >= 3
