"""Tests for inlining and loop unrolling.

The key invariant: interpreting the transformed code must agree with
interpreting the original code (as long as loop bounds are sufficient).
"""

import pytest

from repro.analysis import Inliner, InlineError, find_loops, unroll
from repro.lang import compile_c
from repro.lsl import (
    Block,
    Call,
    ContinueIf,
    Interpreter,
    MachineState,
    MemoryLayout,
    Procedure,
    Program,
    iter_statements,
)


SOURCE = """
int counter;

int bump(int amount) {
    counter = counter + amount;
    return counter;
}

int bump_twice(int amount) {
    int a;
    a = bump(amount);
    a = bump(amount);
    return a;
}

int sum_to(int n) {
    int i = 1;
    int total = 0;
    while (i <= n) {
        total = total + i;
        i = i + 1;
    }
    return total;
}

int nested(int n) {
    int i = 0;
    int total = 0;
    while (i < n) {
        int j = 0;
        while (j < n) {
            total = total + 1;
            j = j + 1;
        }
        i = i + 1;
    }
    return total;
}
"""


def build_state(program):
    layout = MemoryLayout()
    for decl in program.globals:
        layout.add_global(decl.name, decl.field_names, decl.initial)
    return MachineState.initial(layout)


def run_body(program, body, extra_args=None):
    """Interpret a raw (inlined) statement list and return the registers."""
    state = build_state(program)
    interp = Interpreter(program, state)
    return interp.run_statements(body), state


class TestInlining:
    def test_single_call_inlined(self):
        program = compile_c(SOURCE, "inline")
        inliner = Inliner(program)
        body = inliner.inline_call("bump", ("amt",), ("out",))
        # No Call statements remain.
        assert not any(isinstance(s, Call) for s in iter_statements(body))

    def test_inlined_code_behaves_like_call(self):
        program = compile_c(SOURCE, "inline")
        inliner = Inliner(program)
        from repro.lsl import ConstAssign

        body = [ConstAssign("amt", 5)] + inliner.inline_call(
            "bump_twice", ("amt",), ("out",)
        )
        registers, state = run_body(program, body)
        assert registers["out"] == 10
        base = state.layout.global_base("counter")
        assert state.memory[base] == 10

    def test_nested_calls_inlined_recursively(self):
        program = compile_c(SOURCE, "inline")
        inliner = Inliner(program)
        body = inliner.inline_call("bump_twice", ("amt",), ("out",))
        assert not any(isinstance(s, Call) for s in iter_statements(body))

    def test_distinct_call_sites_get_distinct_registers(self):
        program = compile_c(SOURCE, "inline")
        inliner = Inliner(program)
        body = inliner.inline_call("bump_twice", ("amt",), ("out",))
        # The two inlined copies of bump must not share register names for
        # their internals (other than the shared globals).
        prefixes = set()
        for stmt in iter_statements(body):
            dst = getattr(stmt, "dst", "")
            for part in dst.split("::"):
                if part.startswith("bump."):
                    prefixes.add(part)
        assert len(prefixes) >= 2

    def test_unknown_procedure(self):
        program = compile_c(SOURCE, "inline")
        inliner = Inliner(program)
        with pytest.raises(InlineError):
            inliner.inline_call("missing", (), ())

    def test_arity_mismatch(self):
        program = compile_c(SOURCE, "inline")
        inliner = Inliner(program)
        with pytest.raises(InlineError):
            inliner.inline_call("bump", (), ())

    def test_recursion_detected(self):
        program = Program("rec")
        program.add_procedure(Procedure("loop", (), (), [Call("loop", (), ())]))
        inliner = Inliner(program)
        with pytest.raises(InlineError):
            inliner.inline_call("loop", (), ())


class TestUnrolling:
    def _inlined(self, program, proc, args, rets):
        return Inliner(program).inline_call(proc, args, rets)

    def test_find_loops(self):
        program = compile_c(SOURCE, "unroll")
        body = self._inlined(program, "sum_to", ("n",), ("out",))
        assert len(find_loops(body)) == 1

    def test_no_continue_remains_after_unrolling(self):
        program = compile_c(SOURCE, "unroll")
        body = self._inlined(program, "sum_to", ("n",), ("out",))
        result = unroll(body, default_bound=3)
        assert not any(
            isinstance(s, ContinueIf) for s in iter_statements(result.statements)
        )

    @pytest.mark.parametrize("n", [0, 1, 2, 3])
    def test_unrolled_loop_matches_original_when_bound_sufficient(self, n):
        program = compile_c(SOURCE, "unroll")
        from repro.lsl import ConstAssign

        body = self._inlined(program, "sum_to", ("n",), ("out",))
        result = unroll(body, default_bound=4)
        full = [ConstAssign("n", n)] + result.statements
        registers, _ = run_body(program, full)
        assert registers["out"] == sum(range(1, n + 1))

    def test_insufficient_bound_raises_assumption_failure(self):
        from repro.lsl import AssumptionFailed, ConstAssign

        program = compile_c(SOURCE, "unroll")
        body = self._inlined(program, "sum_to", ("n",), ("out",))
        result = unroll(body, default_bound=2)
        full = [ConstAssign("n", 5)] + result.statements
        state = build_state(program)
        interp = Interpreter(program, state)
        with pytest.raises(AssumptionFailed):
            interp.run_statements(full)

    def test_flag_mode_sets_overflow_register(self):
        from repro.lsl import ConstAssign

        program = compile_c(SOURCE, "unroll")
        body = self._inlined(program, "sum_to", ("n",), ("out",))
        result = unroll(body, default_bound=2, overflow="flag")
        assert len(result.overflow_registers) == 1
        flag = next(iter(result.overflow_registers.values()))
        full = [ConstAssign("n", 5)] + result.statements
        registers, _ = run_body(program, full)
        assert registers[flag] == 1
        # With a sufficient bound the flag stays 0.
        result = unroll(body, default_bound=6, overflow="flag")
        flag = next(iter(result.overflow_registers.values()))
        full = [ConstAssign("n", 5)] + result.statements
        registers, _ = run_body(program, full)
        assert registers[flag] == 0

    @pytest.mark.parametrize("n", [0, 1, 2, 3])
    def test_nested_loops_unroll_correctly(self, n):
        from repro.lsl import ConstAssign

        program = compile_c(SOURCE, "unroll")
        body = self._inlined(program, "nested", ("n",), ("out",))
        result = unroll(body, default_bound=4)
        full = [ConstAssign("n", n)] + result.statements
        registers, _ = run_body(program, full)
        assert registers["out"] == n * n

    def test_per_loop_bounds(self):
        program = compile_c(SOURCE, "unroll")
        body = self._inlined(program, "sum_to", ("n",), ("out",))
        loops = find_loops(body)
        result = unroll(body, bounds={loops[0]: 7}, default_bound=1)
        assert result.bounds_used[loops[0]] == 7

    def test_unique_block_tags_after_unrolling(self):
        program = compile_c(SOURCE, "unroll")
        body = self._inlined(program, "nested", ("n",), ("out",))
        result = unroll(body, default_bound=3)
        tags = [
            s.tag for s in iter_statements(result.statements)
            if isinstance(s, Block)
        ]
        assert len(tags) == len(set(tags))
