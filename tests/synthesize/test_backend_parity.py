"""Synthesis-level backend parity.

The low-level core/deletion contract lives in
``tests/sat/test_backend_contract.py``; this file asserts the end-to-end
consequence: the *synthesized fence set* is identical whichever solver
lane drives the search — internal CDCL, the external IPASIR-over-pipe
solver, or the simplifying preprocessor wrapped around either (whose
UNSAT cores must round-trip through its substitution-origin map).

Different lanes produce different SAT witnesses and different (equally
sound) UNSAT cores, so they can reach *different equal-cost optima*;
the search's lexicographic canonicalization pass is what makes this
test possible.  ``lazylist`` is the regression anchor — before
canonicalization the simplify lane genuinely picked a different slot.
"""

from __future__ import annotations

import pytest

from repro.core.checker import CheckOptions
from repro.core.session import CheckSession
from repro.core.synthesize import synthesize_litmus
from repro.datatypes.registry import get_implementation
from repro.fuzz import FuzzProgram
from repro.harness.catalog import get_test
from repro.sat.backend import make_backend_factory

#: lane name -> (solver backend spec, simplify)
LANES = {
    "internal": ("internal", False),
    "ipasir-cli": ("ipasir:cli", False),
    "simplify": ("internal", True),
}

CATALOG_CELLS = [
    ("msn-unfenced", "queue", "T0", "relaxed"),
    ("lazylist-unfenced", "set", "Sac", "relaxed"),  # canonicalization anchor
    ("harris-unfenced", "set", "Sac", "pso"),
]


@pytest.mark.parametrize(
    "impl,category,test,model",
    CATALOG_CELLS,
    ids=[f"{impl}-{model}" for impl, _, _, model in CATALOG_CELLS],
)
def test_catalog_synthesis_agrees_across_lanes(impl, category, test, model):
    outcomes = {}
    for lane, (solver, simplify) in LANES.items():
        session = CheckSession(
            get_implementation(impl),
            CheckOptions(solver_backend=solver, simplify=simplify),
        )
        result = session.synthesize(get_test(category, test), [model])
        assert result.feasible and not result.already_passes
        assert result.verified_sufficient
        outcomes[lane] = (tuple(result.labels), result.cost, result.optimal)
    distinct = set(outcomes.values())
    assert len(distinct) == 1, f"lanes disagree: {outcomes}"


@pytest.mark.parametrize("spec,models", [
    ("x=1 y=1 | r0=y r1=x", ["relaxed"]),
    ("x=1 r0=y | y=1 r1=x", ["tso"]),
    ("x=1 y=1 | r0=y r1=x", ["tso", "pso", "relaxed"]),
])
def test_litmus_synthesis_agrees_across_lanes(spec, models):
    program = FuzzProgram.parse(spec)
    outcomes = {}
    for lane, (solver, simplify) in LANES.items():
        result = synthesize_litmus(
            program,
            models,
            backend_factory=make_backend_factory(solver),
            simplify=simplify,
        )
        assert result.feasible and not result.already_passes
        assert result.verified_sufficient
        outcomes[lane] = (tuple(result.labels), result.cost)
    assert len(set(outcomes.values())) == 1, f"lanes disagree: {outcomes}"


def test_simplify_lane_actually_preprocesses():
    """Guard against the parity test silently degenerating: the simplify
    lane must have run the preprocessor (CHECKFENCE_SIMPLIFY plumbed all
    the way down), otherwise it is just the internal lane twice."""
    session = CheckSession(
        get_implementation("msn-unfenced"),
        CheckOptions(solver_backend="internal", simplify=True),
    )
    result = session.synthesize(get_test("queue", "T0"), ["relaxed"])
    baseline = CheckSession(
        get_implementation("msn-unfenced"),
        CheckOptions(solver_backend="internal", simplify=False),
    ).synthesize(get_test("queue", "T0"), ["relaxed"])
    assert result.labels == baseline.labels
    # Both lanes certify the same canonical repair independently.
    assert result.verified_minimal and baseline.verified_minimal
