"""Catalog fence synthesis: repair every unfenced implementation.

The Section 4.3 experiment in reverse: starting from the ``*-unfenced``
variants (whose FAIL verdicts ``tests/experiments`` already pins),
``CheckSession.synthesize`` must find a fence set that turns the cell
back to PASS, prove it 1-minimal, and come in at or below the
hand-fenced implementation's fence count.  Expected sets are pinned —
they are canonical (deterministic across solver backends, see
``test_backend_parity``) and small enough to eyeball against the paper's
placements (store-store before the linearizing store, load-load between
the dependent reads).
"""

from __future__ import annotations

import pytest

from repro.core.checker import CheckOptions
from repro.core.session import CheckSession
from repro.datatypes.registry import get_implementation
from repro.harness.catalog import get_test
from repro.harness.runner import count_hand_fences

#: (base implementation, category, test) — synthesis runs on
#: ``{base}-unfenced``; the hand-fenced ``base`` is the size yardstick.
PAIRS = [
    ("msn", "queue", "T0"),
    ("ms2", "queue", "T0"),
    ("lazylist", "set", "Sac"),
    ("harris", "set", "Sac"),
]

#: Pinned canonical fence sets per (base, model).  ``tso`` cells pass
#: without fences for every pair, so only pso/relaxed appear here.
EXPECTED = {
    ("msn", "pso"): {"enqueue@0:store-store"},
    ("msn", "relaxed"): {"dequeue@1:load-load", "enqueue@6:store-store"},
    ("ms2", "pso"): {"enqueue@0:store-store"},
    ("ms2", "relaxed"): {"dequeue@2:load-load", "enqueue@0:store-store"},
    ("lazylist", "pso"): {"add@10:store-store"},
    ("lazylist", "relaxed"): {"add@10:store-store", "contains@1:load-load"},
    ("harris", "pso"): {"add@6:store-store"},
    ("harris", "relaxed"): {"add@6:store-store", "contains@1:load-load"},
}

MODELS = ["tso", "pso", "relaxed"]

CELLS = [(base, category, test, model)
         for base, category, test in PAIRS for model in MODELS]


@pytest.fixture(scope="module")
def synthesis_results():
    """One warm session per implementation, all models synthesized on it —
    the per-test asserts below read from this cache."""
    results = {}
    for base, category, test_name in PAIRS:
        session = CheckSession(
            get_implementation(f"{base}-unfenced"), CheckOptions()
        )
        test = get_test(category, test_name)
        for model in MODELS:
            results[(base, model)] = session.synthesize(test, [model])
    return results


@pytest.mark.parametrize(
    "base,category,test,model",
    CELLS,
    ids=[f"{base}-{model}" for base, _, _, model in CELLS],
)
def test_synthesis_repairs_cell(synthesis_results, base, category, test, model):
    result = synthesis_results[(base, model)]
    assert result.feasible

    if model == "tso":
        # Every catalog pair already passes under TSO unfenced
        # (tests/experiments pins the PASS row): nothing to insert.
        assert result.already_passes
        assert result.fences == []
        assert result.cost == 0
        return

    assert not result.already_passes
    assert result.failing_queries, "a FAILing query must drive the search"
    # Sufficiency and minimality are certified by independent concrete
    # re-checks (fresh compile with real fences, no selectors).
    assert result.verified_sufficient
    assert result.verified_minimal
    assert result.optimal, "exact search must prove cost-optimality"
    assert set(result.labels) == EXPECTED[(base, model)]


@pytest.mark.parametrize("base,category,test",
                         PAIRS, ids=[p[0] for p in PAIRS])
def test_synthesized_set_no_larger_than_hand_fenced(
    synthesis_results, base, category, test
):
    """The paper's hand placements fence every architecture at once; the
    per-model synthesized sets must never need more."""
    hand = count_hand_fences(base)
    assert hand > 0, f"{base} should carry hand-written fences"
    for model in MODELS:
        result = synthesis_results[(base, model)]
        assert len(result.fences) <= hand, (
            f"{base}/{model}: synthesized {len(result.fences)} fences, "
            f"hand-fenced version has {hand}"
        )


def test_relaxed_set_repairs_weaker_models_too(synthesis_results):
    """Monotonicity on a real data type: the relaxed-synthesized set costs
    at least as much as the pso one, and the pso placement is a sub-fence
    of the relaxed repair (the store-store barrier persists)."""
    for base, _, _ in PAIRS:
        relaxed = synthesis_results[(base, "relaxed")]
        pso = synthesis_results[(base, "pso")]
        assert relaxed.cost >= pso.cost
        relaxed_kinds = {label.split(":")[1] for label in relaxed.labels}
        assert "store-store" in relaxed_kinds


def test_statistics_are_populated(synthesis_results):
    for base, _, _ in PAIRS:
        result = synthesis_results[(base, "relaxed")]
        stats = result.stats
        assert stats.candidates > 0
        assert stats.solves > 0
        assert stats.solve_seconds >= 0.0
        assert 0 < stats.core_size <= stats.candidates
        payload = result.as_dict()
        assert payload["stats"]["solves"] == stats.solves
        assert [f["label"] for f in payload["fences"]] == result.labels
