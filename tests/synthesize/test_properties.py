"""Property tests for litmus fence synthesis.

Three properties over arbitrary generated programs:

* **Oracle verdict** — the synthesized placement, inserted as concrete
  fences, restricts the program's outcomes under the weak model to its
  SC outcome set *according to the operational oracle* (which shares
  nothing with the SAT stack that drove the search).
* **Monotonicity** — a set sufficient under ``relaxed`` is sufficient
  under the stronger ``pso`` and ``tso`` (supersets of forbidden
  reorderings forbid supersets of outcomes).
* **Determinism** — re-running synthesis on the same program yields the
  identical canonical fence set, label for label.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.synthesize import placements_of, synthesize_litmus
from repro.fuzz import FuzzProgram, generate_program
from repro.oracle import enumerate_outcomes


def random_unfenced_program(seed: int) -> FuzzProgram | None:
    """A generated program with its fences stripped (synthesis should
    place its own), or None when stripping empties it."""
    program = generate_program(random.Random(seed))
    threads = tuple(
        stripped
        for thread in program.threads
        if (stripped := tuple(op for op in thread if op.kind != "fence"))
    )
    if not threads:
        return None
    return FuzzProgram(threads=threads)


def oracle_outcomes(program: FuzzProgram, model: str):
    result = enumerate_outcomes(program.compile(), model)
    assert result.ok, result.reason
    return result.outcomes


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_synthesized_fences_pass_the_oracle(seed):
    program = random_unfenced_program(seed)
    if program is None:
        return
    result = synthesize_litmus(program, "relaxed")
    assert result.feasible, program.spec()
    assert result.verified_sufficient
    assert result.verified_minimal
    if result.already_passes:
        return
    specification = oracle_outcomes(program, "sc")
    fenced = program.with_fences(placements_of(result.fences))
    repaired = oracle_outcomes(fenced, "relaxed")
    assert repaired <= specification, (
        f"{program.spec()}: oracle says the synthesized set "
        f"{result.labels} leaves non-SC outcomes reachable"
    )


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_relaxed_sufficient_set_holds_under_stronger_models(seed):
    program = random_unfenced_program(seed)
    if program is None:
        return
    result = synthesize_litmus(program, "relaxed")
    if not result.feasible or result.already_passes:
        return
    specification = oracle_outcomes(program, "sc")
    fenced = program.with_fences(placements_of(result.fences))
    for model in ("pso", "tso"):
        outcomes = oracle_outcomes(fenced, model)
        assert outcomes <= specification, (
            f"{program.spec()}: relaxed repair insufficient under {model}"
        )


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_synthesis_is_deterministic(seed):
    program = random_unfenced_program(seed)
    if program is None:
        return
    first = synthesize_litmus(program, "relaxed")
    second = synthesize_litmus(program, "relaxed")
    assert first.labels == second.labels
    assert first.cost == second.cost
    assert first.optimal == second.optimal


def test_multi_model_synthesis_covers_every_model():
    """A jointly synthesized set repairs all requested models at once —
    classic message passing needs the write and read fences even when tso
    alone would need none."""
    program = FuzzProgram.parse("x=1 y=1 | r0=y r1=x")
    joint = synthesize_litmus(program, ["tso", "pso", "relaxed"])
    assert joint.feasible and not joint.already_passes
    assert joint.verified_sufficient
    assert set(joint.labels) == {"t0@1:store-store", "t1@1:load-load"}
    specification = oracle_outcomes(program, "sc")
    fenced = program.with_fences(placements_of(joint.fences))
    for model in ("tso", "pso", "relaxed"):
        assert oracle_outcomes(fenced, model) <= specification
