"""Frozen synthesis corpus: pinned minimal fence sets.

Fifteen litmus programs — the classic shapes (MP, SB, LB, IRIW,
write-chain) plus a band of generator output — each with its canonical
minimal fence set pinned.  Any engine change that alters a placement,
adds a fence, or flips a verdict shows up here as an exact-match
failure, with the spec string in the test id for instant repro via
``checkfence synthesize --spec '<spec>'``.

The pins are canonical: deterministic across runs and across solver
backends (the search tie-breaks equal-cost optima lexicographically).
"""

from __future__ import annotations

import pytest

from repro.core.synthesize import synthesize_litmus
from repro.fuzz import FuzzProgram

#: (spec, model, expected labels).  Empty tuple = already passes.
CORPUS = [
    # -- classics, relaxed ------------------------------------------------
    ("x=1 y=1 | r0=y r1=x", "relaxed",
     ("t0@1:store-store", "t1@1:load-load")),          # message passing
    ("x=1 r0=y | y=1 r1=x", "relaxed",
     ("t0@1:store-load", "t1@1:store-load")),          # store buffering
    ("r0=x y=1 | r1=y x=1", "relaxed",
     ("t0@1:load-store", "t1@1:load-store")),          # load buffering
    ("x=1 y=1 z=1 | r0=z r1=y r2=x", "relaxed",
     ("t0@1:store-store", "t0@2:store-store",
      "t1@1:load-load", "t1@2:load-load")),            # 3-hop MP chain
    ("x=1 y=1 | y=2 x=2 | r0=x r1=y", "relaxed",
     ("t1@1:store-store", "t2@1:load-load")),
    ("x=1 y=1 | r0=y r1=x | r0=x r1=y", "relaxed",
     ("t0@1:store-store", "t1@1:load-load")),          # MP, two readers
    ("x=1 | y=1 | r0=x r1=y | r2=y r3=x", "relaxed",
     ("t2@1:load-load", "t3@1:load-load")),            # IRIW
    ("x=1 f(ss) y=1 | r0=y r1=x", "relaxed",
     ("t1@1:load-load",)),                             # writer pre-fenced
    # -- model sensitivity ------------------------------------------------
    ("x=1 y=1 | r0=y r1=x | r0=x r1=y", "pso",
     ("t0@1:store-store",)),
    ("x=1 | y=1 | r0=x r1=y | r2=y r3=x", "pso", ()),
    ("x=1 r0=y | y=1 r1=x", "tso",
     ("t0@1:store-load", "t1@1:store-load")),          # SB fails even on tso
    ("r0=x x=1 | r1=x x=2", "relaxed", ()),            # coherence suffices
    # -- generator band (seed 20260808) -----------------------------------
    ("x=1 | x=2 r0=x r1=y | y=1", "relaxed", ()),
    ("r0=y r1=x | x=1 r0=x r1=x | x=2 r0=y", "relaxed",
     ("t1@2:load-load",)),
    ("y=2 y=1 x=1 | r0=x x=2 | r0=y x=2 r1=x", "relaxed", ()),
]


@pytest.mark.parametrize(
    "spec,model,expected",
    CORPUS,
    ids=[f"{spec} [{model}]" for spec, model, _ in CORPUS],
)
def test_corpus_pin(spec, model, expected):
    program = FuzzProgram.parse(spec)
    result = synthesize_litmus(program, model)
    assert result.feasible, f"{spec}: no repairing fence set exists"
    assert tuple(result.labels) == expected
    if expected:
        assert not result.already_passes
        assert result.optimal
        assert result.verified_sufficient
        assert result.verified_minimal
        assert result.cost == sum(f.cost for f in result.fences)
    else:
        assert result.already_passes
        assert result.cost == 0


def test_corpus_covers_every_partial_fence_kind():
    """The pinned sets between them exercise all four partial barriers —
    a corpus that only ever placed store-store would not regress the
    cost weighting."""
    kinds = {
        label.split(":")[1]
        for _, _, expected in CORPUS
        for label in expected
    }
    assert kinds == {"load-load", "load-store", "store-load", "store-store"}
