"""Setup shim so that ``pip install -e .`` works offline.

The environment this reproduction targets has no network access and an older
setuptools without wheel support, so the modern PEP 517 editable path is not
available.  This shim lets pip fall back to the legacy ``setup.py develop``
route; all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
