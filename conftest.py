"""Pytest bootstrap: make the in-tree package importable.

This keeps ``pytest`` working even when the package has not been installed
(the offline environment cannot always complete an editable install).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
