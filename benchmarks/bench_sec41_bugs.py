"""Section 4.1: the bugs found by the checker.

* the snark deque's double-pop bug (reintroduced in the ``snark-buggy``
  variant, exposed on the minimal single-element test), and
* the lazy-list missing-initialization bug (``lazylist-buggy``), which is
  independent of the memory model.
"""

import pytest

from repro.core import check
from repro.datatypes import get_implementation
from repro.harness.bugtests import deque_double_pop_test, lazylist_missing_init_test


def test_snark_double_pop_bug(run_once, capsys):
    result = run_once(
        check, get_implementation("snark-buggy"), deque_double_pop_test(), "sc"
    )
    assert result.failed
    with capsys.disabled():
        print("\nSection 4.1 — snark double-pop counterexample:")
        print(result.counterexample.format())


def test_snark_fixed_passes(run_once):
    result = run_once(
        check, get_implementation("snark"), deque_double_pop_test(), "sc"
    )
    assert result.passed


def test_lazylist_missing_initialization_bug(run_once, capsys):
    result = run_once(
        check, get_implementation("lazylist-buggy"), lazylist_missing_init_test(),
        "sc",
    )
    assert result.failed
    with capsys.disabled():
        print("\nSection 4.1 — lazylist missing-initialization counterexample:")
        print(result.counterexample.format())


def test_lazylist_fixed_passes(run_once):
    result = run_once(
        check, get_implementation("lazylist"), lazylist_missing_init_test(), "sc"
    )
    assert result.passed
