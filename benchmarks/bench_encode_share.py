"""Encode-time comparison: shared skeleton vs from-scratch encoding.

For every small-tier catalog test this benchmark encodes the full
five-model sweep twice — once rebuilding the formula from scratch for
every model (``share_encode=False``, the ``--no-share-encode`` baseline)
and once on forks of the memoized model-independent skeleton (the
default) — and gates the headline claim of the optimization:

* summed over the sweep, scratch encoding must take at least **2x** the
  wall-clock of shared encoding.

Methodology: the two sides are measured in interleaved rounds (scratch,
shared, scratch, shared, ...) so machine-load swings hit both equally,
and each side keeps its per-test **minimum** across rounds — the
standard noise-robust estimator for CPU-bound work.  Each round compiles
the test afresh on both sides, so the shared side honestly pays its
skeleton build inside the measured window (the skeleton is memoized on
the compiled test, and a fresh compile starts with none).
"""

import time

import pytest

from repro.datatypes.registry import category_of, get_implementation
from repro.encoding import compile_test, encode_test
from repro.harness.catalog import get_test, test_names as catalog_test_names
from repro.memorymodel.base import get_model

MODELS = [get_model(name) for name in ("serial", "sc", "tso", "pso", "relaxed")]

ROUNDS = 3

#: The acceptance threshold: scratch / shared encode seconds.
MIN_SPEEDUP = 2.0


def _cases():
    cases = []
    for implementation in ("msn", "ms2", "harris", "lazylist", "snark"):
        category = category_of(implementation)
        for name in catalog_test_names(category, "small"):
            cases.append((implementation, name))
    return cases


def _sweep_seconds(implementation, test, share: bool) -> float:
    """Seconds to encode one fresh-compiled test under every model."""
    compiled = compile_test(implementation, test)
    start = time.perf_counter()
    for model in MODELS:
        encode_test(compiled, model, share_encode=share)
    return time.perf_counter() - start


def _measure():
    """Interleaved measurement; per-test minimum across rounds per side."""
    cases = [
        (name, test_name,
         get_implementation(name),
         get_test(category_of(name), test_name))
        for name, test_name in _cases()
    ]
    scratch = {(n, t): float("inf") for n, t, _, _ in cases}
    shared = {(n, t): float("inf") for n, t, _, _ in cases}
    for _ in range(ROUNDS):
        for name, test_name, implementation, test in cases:
            key = (name, test_name)
            scratch[key] = min(
                scratch[key], _sweep_seconds(implementation, test, False)
            )
            shared[key] = min(
                shared[key], _sweep_seconds(implementation, test, True)
            )
    return scratch, shared


def test_shared_encoding_at_least_2x_faster(benchmark):
    """Acceptance gate: >=2x less encode wall-clock on the small-tier
    catalog five-model sweep when the skeleton is shared."""
    scratch, shared = benchmark.pedantic(_measure, rounds=1, iterations=1)
    scratch_total = sum(scratch.values())
    shared_total = sum(shared.values())
    speedup = scratch_total / max(1e-9, shared_total)
    benchmark.extra_info["encode_share"] = {
        "models": [model.name for model in MODELS],
        "rounds": ROUNDS,
        "scratch_seconds": scratch_total,
        "shared_seconds": shared_total,
        "speedup": speedup,
        "per_test": {
            f"{name}/{test_name}": {
                "scratch": scratch[(name, test_name)],
                "shared": shared[(name, test_name)],
                "speedup": (
                    scratch[(name, test_name)]
                    / max(1e-9, shared[(name, test_name)])
                ),
            }
            for name, test_name in scratch
        },
    }
    assert speedup >= MIN_SPEEDUP, (
        f"shared-skeleton encode speedup dropped to {speedup:.2f}x "
        f"(scratch {scratch_total:.3f}s, shared {shared_total:.3f}s) — "
        f"the >= {MIN_SPEEDUP:.1f}x acceptance gate failed"
    )


def test_shared_sweep_reuses_one_skeleton(benchmark):
    """Sanity companion to the timing gate: across a five-model sweep the
    skeleton is built exactly once and every later model reuses it."""
    implementation = get_implementation("msn")
    test = get_test("queue", "T0")

    def encode_sweep():
        compiled = compile_test(implementation, test)
        return [
            encode_test(compiled, model, share_encode=True).stats
            for model in MODELS
        ]

    stats = benchmark.pedantic(encode_sweep, rounds=1, iterations=1)
    assert stats[0].skeleton_shared is False
    assert all(s.skeleton_shared for s in stats[1:])
    assert stats[0].skeleton_seconds > 0.0
    assert all(s.skeleton_seconds == 0.0 for s in stats[1:])
