"""Fig. 8: the symbolic test catalog.

Regenerates the catalog and benchmarks the compilation (inline + unroll +
range analysis) of each small/medium test against its implementation.
"""

import pytest

from repro.datatypes import get_implementation
from repro.encoding import compile_test
from repro.harness.catalog import get_test, test_names


def test_catalog_is_complete(capsys):
    lines = []
    for category in ("queue", "set", "deque"):
        names = test_names(category)
        lines.append(f"{category}: {', '.join(names)}")
    with capsys.disabled():
        print("\nFig. 8 catalog:\n" + "\n".join(lines))
    assert len(test_names("queue")) == 13
    assert len(test_names("set")) == 9
    assert len(test_names("deque")) == 5


_CASES = (
    [("msn", "queue", name) for name in test_names("queue", "small")]
    + [("lazylist", "set", name) for name in test_names("set", "small")]
    + [("snark", "deque", name) for name in test_names("deque", "small")]
)


@pytest.mark.parametrize("implementation,category,test_name", _CASES)
def test_compile_catalog_test(benchmark, implementation, category, test_name):
    impl = get_implementation(implementation)
    test = get_test(category, test_name)
    compiled = benchmark(compile_test, impl, test)
    stats = compiled.size_statistics()
    assert stats["loads"] > 0 and stats["stores"] > 0
