"""Section 4.4, "Choice of memory model".

The paper reports that checking under sequential consistency is only about
4% faster than under Relaxed — the model choice has no significant impact on
tool runtime.  We measure the same comparison on the small tests.
"""

import pytest

from repro.harness.reporting import format_table
from repro.harness.runner import check_catalog_test

_CASES = [("msn", "T0"), ("ms2", "T0"), ("harris", "Sac")]
_RESULTS = []


@pytest.mark.parametrize("implementation,test_name", _CASES)
@pytest.mark.parametrize("model", ["sc", "relaxed"])
def test_model_choice_runtime(benchmark, implementation, test_name, model):
    result = benchmark.pedantic(
        check_catalog_test, args=(implementation, test_name, model),
        rounds=1, iterations=1,
    )
    assert result.passed
    _RESULTS.append((implementation, test_name, model, result.stats.total_seconds))


def test_report_model_choice(capsys):
    assert _RESULTS
    by_case = {}
    for implementation, test_name, model, seconds in _RESULTS:
        by_case.setdefault((implementation, test_name), {})[model] = seconds
    rows = []
    for (implementation, test_name), models in by_case.items():
        if {"sc", "relaxed"} <= set(models):
            ratio = models["sc"] / models["relaxed"] if models["relaxed"] else 1.0
            rows.append(
                (implementation, test_name, f"{models['sc']:.2f}",
                 f"{models['relaxed']:.2f}", f"{ratio:.2f}")
            )
    with capsys.disabled():
        print("\nSection 4.4: runtime under SC vs Relaxed (ratio ~1 expected)\n")
        print(format_table(["impl", "test", "sc[s]", "relaxed[s]", "sc/relaxed"],
                           rows))
