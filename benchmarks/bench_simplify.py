"""CNF preprocessing benchmark: reduction gates + simplify on/off stats.

Two gates ride along (mirroring ``bench_encoding_size`` for the encoder):

* on the **two largest** Fig. 8 tests (lazylist/Saaarr and msn/Tpc6 by
  post-pruning clause count) the SatELite-style preprocessor
  (:mod:`repro.sat.simplify`) must remove at least **30%** of the lowered
  clauses — the headline reduction cannot silently regress;
* a full check run with simplification forced on must stay
  verdict-identical to the unsimplified run, with the preprocessing
  counters (vars_eliminated, clauses_subsumed, equiv_merged,
  preprocess_seconds) recorded next to the solver counters in the
  benchmark JSON, so the trend snapshots carry both sides of the A/B.

Only encoding + preprocessing runs for the reduction gate (no solving),
which keeps even the large tests affordable in CI.
"""

import pytest

from repro.core.checker import CheckOptions
from repro.core.specification import SatSpecificationMiner
from repro.datatypes.registry import category_of, get_implementation
from repro.encoding import compile_test, encode_test
from repro.harness.catalog import get_test
from repro.harness.runner import inclusion_row
from repro.memorymodel.base import get_model
from repro.sat.simplify import simplify_cnf

#: The two largest Fig. 8 catalog tests by post-pruning CNF size
#: (lazylist/Saaarr: ~375k clauses, msn/Tpc6: ~293k clauses) — the pair
#: the >=30% clause-reduction acceptance gate is pinned to.
LARGEST = [("lazylist", "Saaarr"), ("msn", "Tpc6")]

#: Minimum fraction of clauses preprocessing must remove on LARGEST.
REDUCTION_GATE = 0.30


def _preprocess_stats(implementation_name: str, test_name: str):
    implementation = get_implementation(implementation_name)
    test = get_test(category_of(implementation_name), test_name)
    compiled = compile_test(implementation, test)
    encoded = encode_test(compiled, get_model("relaxed"), simplify=False)
    _, simplifier = simplify_cnf(
        encoded.cnf, frozen=encoded.frozen_variables()
    )
    return simplifier.stats


@pytest.mark.parametrize("implementation,test_name", LARGEST)
def test_two_largest_lose_at_least_30_percent_of_clauses(
    benchmark, implementation, test_name
):
    """Acceptance gate: >=30% post-preprocessing clause reduction."""
    stats = benchmark.pedantic(
        _preprocess_stats, args=(implementation, test_name),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["simplify"] = stats.as_dict()
    benchmark.extra_info["simplify"]["clause_reduction"] = (
        stats.clause_reduction
    )
    assert stats.clause_reduction >= REDUCTION_GATE, (
        f"{implementation}/{test_name}: preprocessing removed only "
        f"{100 * stats.clause_reduction:.1f}% of clauses "
        f"({stats.clauses_before} -> {stats.clauses_after})"
    )


def test_check_solver_stats_simplify_on_vs_off(benchmark, monkeypatch):
    """One full check (msn/Ti2 on Relaxed) with the preprocessor forced on
    vs off: verdict-identical, with both solver-counter sets embedded in
    the benchmark JSON."""
    monkeypatch.setenv("CHECKFENCE_SIMPLIFY_MIN_CLAUSES", "0")

    def run_both():
        on = inclusion_row(
            "msn", "Ti2", "relaxed", CheckOptions(simplify=True)
        )
        off = inclusion_row(
            "msn", "Ti2", "relaxed", CheckOptions(simplify=False)
        )
        return on, off

    on, off = benchmark.pedantic(run_both, rounds=1, iterations=1)
    benchmark.extra_info["simplify_on"] = {
        "total_seconds": on.total_seconds,
        "solve_seconds": on.solve_seconds,
        **on.solver_dict(),
    }
    benchmark.extra_info["simplify_off"] = {
        "total_seconds": off.total_seconds,
        "solve_seconds": off.solve_seconds,
        **off.solver_dict(),
    }
    assert on.passed == off.passed
    assert on.simplify and not off.simplify
    assert on.solver_vars_eliminated > 0
    assert on.solver_preprocess_seconds > 0.0
    assert off.solver_vars_eliminated == 0


def test_outcome_mining_simplify_on_vs_off(benchmark, monkeypatch):
    """The solve/block enumeration loop (SAT specification mining on
    msn/Ti2) — the workload projected blocking + preprocessing targets:
    identical observation sets, both timings recorded."""
    monkeypatch.setenv("CHECKFENCE_SIMPLIFY_MIN_CLAUSES", "0")
    implementation = get_implementation("msn")
    test = get_test("queue", "Ti2")
    compiled = compile_test(implementation, test)

    def mine_both():
        on = SatSpecificationMiner(compiled, simplify=True).mine()
        off = SatSpecificationMiner(compiled, simplify=False).mine()
        return on, off

    on, off = benchmark.pedantic(mine_both, rounds=1, iterations=1)
    benchmark.extra_info["mining"] = {
        "observations": len(on),
        "solves": on.solver_iterations,
        "seconds_simplify_on": on.mining_seconds,
        "seconds_simplify_off": off.mining_seconds,
    }
    assert on.observations == off.observations
