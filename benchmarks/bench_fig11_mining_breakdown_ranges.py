"""Fig. 11: specification mining, runtime breakdown, and range analysis.

* Fig. 11a — observation-set size vs enumeration time, for the SAT-based
  miner and the fast reference-implementation miner ("refset").
* Fig. 11b — average breakdown of total runtime into specification mining,
  encoding, and refutation.
* Fig. 11c — runtime with vs without the range analysis of Section 3.4.
"""

import pytest

from repro.harness.reporting import format_table
from repro.harness.runner import breakdown, mining_point, range_analysis_comparison

_MINING_CASES = [
    ("msn", "T0"),
    ("msn", "Ti2"),
    ("ms2", "T0"),
    ("harris", "Sac"),
    ("lazylist", "Sac"),
]

_MINING_POINTS = []


@pytest.mark.parametrize("implementation,test_name", _MINING_CASES)
@pytest.mark.parametrize("method", ["reference", "sat"])
def test_fig11a_specification_mining(benchmark, implementation, test_name, method):
    point = benchmark.pedantic(
        mining_point, args=(implementation, test_name, method),
        rounds=1, iterations=1,
    )
    assert point.observation_set_size > 0
    _MINING_POINTS.append(point)


def test_fig11a_report(capsys):
    assert _MINING_POINTS
    headers = ["impl", "test", "method", "|S|", "time[s]"]
    rows = [
        (p.implementation, p.test, p.method, p.observation_set_size,
         f"{p.mining_seconds:.3f}")
        for p in _MINING_POINTS
    ]
    with capsys.disabled():
        print("\nFig. 11 (a): specification mining\n")
        print(format_table(headers, rows))
    # The paper's observation: the reference ("refset") miner is much faster
    # than SAT enumeration on the same tests.
    by_key = {}
    for point in _MINING_POINTS:
        by_key.setdefault((point.implementation, point.test), {})[point.method] = point
    for (implementation, test_name), methods in by_key.items():
        if {"sat", "reference"} <= set(methods):
            assert (
                methods["reference"].mining_seconds
                <= methods["sat"].mining_seconds
            ), f"refset slower than SAT mining on {implementation}/{test_name}"
            assert (
                methods["reference"].observation_set_size
                == methods["sat"].observation_set_size
            )


_BREAKDOWN_CASES = [("msn", "T0"), ("ms2", "T0"), ("harris", "Sac")]


@pytest.mark.parametrize("implementation,test_name", _BREAKDOWN_CASES)
def test_fig11b_runtime_breakdown(benchmark, implementation, test_name, capsys):
    result = benchmark.pedantic(
        breakdown, args=(implementation, test_name, "relaxed", "sat"),
        rounds=1, iterations=1,
    )
    shares = result.shares()
    with capsys.disabled():
        rendered = ", ".join(f"{k}: {v:.0%}" for k, v in shares.items())
        print(f"\nFig. 11 (b) {implementation}/{test_name}: {rendered}")
    assert abs(sum(shares.values()) - 1.0) < 1e-9
    # Every phase takes part of the time (mining is a nontrivial share, as in
    # the paper's 38% average).
    assert shares["specification mining"] > 0


_RANGE_CASES = [("msn", "T0"), ("ms2", "T0"), ("harris", "Sac")]
_RANGE_RESULTS = []


@pytest.mark.parametrize("implementation,test_name", _RANGE_CASES)
def test_fig11c_range_analysis_impact(benchmark, implementation, test_name):
    comparison = benchmark.pedantic(
        range_analysis_comparison, args=(implementation, test_name),
        rounds=1, iterations=1,
    )
    _RANGE_RESULTS.append(comparison)
    # The analysis must shrink the formula; the paper reports an average 42%
    # runtime improvement, growing with test size.
    assert comparison.with_clauses < comparison.without_clauses


def test_fig11c_report(capsys):
    assert _RANGE_RESULTS
    headers = ["impl", "test", "with[s]", "without[s]", "speedup",
               "clauses with", "clauses without"]
    rows = [
        (c.implementation, c.test, f"{c.with_analysis_seconds:.2f}",
         f"{c.without_analysis_seconds:.2f}", f"{c.speedup:.2f}x",
         c.with_clauses, c.without_clauses)
        for c in _RANGE_RESULTS
    ]
    with capsys.disabled():
        print("\nFig. 11 (c): impact of the range analysis\n")
        print(format_table(headers, rows))
