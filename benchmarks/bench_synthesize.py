"""Fence synthesis cost: solve counts, wall-clock, and the warm-solver A/B.

Synthesis issues dozens of closely-related SAT queries per cell (all-on
probe, core re-validation, destructive deletion, hitting-set candidates,
the minimality certificate), which is exactly the workload the
persistent incremental backend exists for.  Two groups:

* per catalog pair — one synthesis run per ``*-unfenced`` cell under
  Relaxed, with the search statistics embedded in the benchmark JSON;
* **persistent vs restart A/B** — the identical search driven by one
  long-lived ``--incremental`` pipe solver vs a restart-per-solve DIMACS
  subprocess (fresh process + full clause re-export per query), gated at
  >=2x and required to return the identical canonical fence set.
"""

import os
import sys
import time

import pytest

from repro.core.checker import CheckOptions
from repro.core.session import CheckSession
from repro.datatypes.registry import get_implementation
from repro.harness.catalog import get_test

_CLI_COMMAND = f"{sys.executable} -m repro.sat.dimacs_cli"

_PAIRS = [
    ("msn-unfenced", "queue", "T0"),
    ("ms2-unfenced", "queue", "T0"),
    ("lazylist-unfenced", "set", "Sac"),
    ("harris-unfenced", "set", "Sac"),
]


@pytest.fixture(autouse=True)
def src_on_subprocess_path(monkeypatch):
    src = os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "src")
    )
    existing = os.environ.get("PYTHONPATH")
    monkeypatch.setenv(
        "PYTHONPATH", src + os.pathsep + existing if existing else src
    )


def _synthesize(implementation, category, test, options):
    session = CheckSession(get_implementation(implementation), options)
    return session.synthesize(get_test(category, test), ["relaxed"])


@pytest.mark.parametrize("implementation,category,test", _PAIRS)
def test_synthesize_catalog_pair(
    benchmark, implementation, category, test
):
    result = benchmark.pedantic(
        _synthesize,
        args=(implementation, category, test, CheckOptions()),
        rounds=1, iterations=1,
    )
    assert result.feasible and not result.already_passes
    assert result.verified_sufficient and result.verified_minimal
    benchmark.extra_info["synthesis"] = {
        "cell": f"{implementation}/{test}/relaxed",
        "fences": result.labels,
        "cost": result.cost,
        "optimal": result.optimal,
        **result.stats.as_dict(),
    }


def test_persistent_vs_restart_search(benchmark):
    """The acceptance gate: the core-guided search on one warm
    incremental solver must beat restart-per-solve by >=2x wall-clock on
    msn-unfenced/T0/relaxed, finding the identical canonical set."""

    def run_both():
        start = time.perf_counter()
        persistent = _synthesize(
            "msn-unfenced", "queue", "T0",
            CheckOptions(solver_backend="ipasir:cli", simplify=False),
        )
        persistent_seconds = time.perf_counter() - start
        start = time.perf_counter()
        restart = _synthesize(
            "msn-unfenced", "queue", "T0",
            CheckOptions(
                solver_backend=f"dimacs:{_CLI_COMMAND}", simplify=False
            ),
        )
        restart_seconds = time.perf_counter() - start
        return persistent, persistent_seconds, restart, restart_seconds

    persistent, persistent_seconds, restart, restart_seconds = (
        benchmark.pedantic(run_both, rounds=1, iterations=1)
    )
    # Identical canonical set; solve COUNTS legitimately differ (the
    # restart lane's conservative full-assumption cores leave the
    # deletion phase more work), which is part of the contrast measured.
    assert persistent.labels == restart.labels
    assert persistent.cost == restart.cost
    speedup = (
        restart_seconds / persistent_seconds
        if persistent_seconds > 0 else float("inf")
    )
    benchmark.extra_info["synthesize_ab"] = {
        "cell": "msn-unfenced/T0/relaxed",
        "persistent_solves": persistent.stats.solves,
        "restart_solves": restart.stats.solves,
        "persistent_seconds": persistent_seconds,
        "restart_seconds": restart_seconds,
        "speedup": speedup,
    }
    assert speedup >= 2.0, (
        f"warm incremental synthesis was only {speedup:.1f}x faster than "
        "restart-per-solve"
    )
