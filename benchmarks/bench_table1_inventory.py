"""Table 1: the five studied implementations (and their variants).

Regenerates the inventory and measures how long the front-end takes to
translate each implementation's C source into LSL.
"""

import pytest

from repro.datatypes import TABLE1, available_implementations, get_implementation
from repro.harness.reporting import format_table
from repro.lang import compile_c


def test_table1_contents_match_paper(capsys):
    rows = [(name, title, description) for name, title, description in TABLE1]
    table = format_table(["name", "data type", "description"], rows)
    with capsys.disabled():
        print("\nTable 1 — implementations studied:\n" + table)
    assert [row[0] for row in TABLE1] == ["ms2", "msn", "lazylist", "harris", "snark"]


@pytest.mark.parametrize("name", sorted(available_implementations()))
def test_frontend_translates_each_variant(benchmark, name):
    implementation = get_implementation(name)
    program = benchmark(compile_c, implementation.source, name)
    assert program.procedures
