"""Differential-fuzzer throughput: programs and (program, model) cells per
second, single process.

Every cell runs the whole pipeline twice — the explicit-state enumerator
and an incremental mine-and-block loop on the SAT encoding — so this is a
trajectory for the compile, encode, solve *and* oracle hot paths at once.
The JSON (``--benchmark-json``) embeds the campaign numbers under
``extra_info["fuzz"]``; re-run with ``CHECKFENCE_JOBS>1`` on multicore
hardware for the scaled figure.
"""

from repro.harness.runner import fuzz_campaign

_BUDGET = 60
_SEED = 1


def test_fuzz_throughput(benchmark):
    result = benchmark.pedantic(
        fuzz_campaign,
        kwargs={"budget": _BUDGET, "seed": _SEED},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["fuzz"] = {
        "budget": _BUDGET,
        "seed": _SEED,
        "programs": len(result.specs),
        "cells": result.cells_checked,
        "models": list(result.models),
        "programs_per_second": result.programs_per_second,
        "cells_per_second": result.cells_per_second,
        "divergences": len(result.divergences),
        "inconclusive": len(result.inconclusive),
        "jobs": result.matrix.jobs,
    }
    assert result.ok, [d.description for d in result.divergences]
    assert result.cells_checked == len(result.specs) * len(result.models)
