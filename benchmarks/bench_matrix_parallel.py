"""Parallel check matrix: jobs=1 vs jobs=N on the Fig. 8 catalog.

Every (test, model, implementation) cell is an independent SAT instance,
so the catalog should scale near-linearly with cores.  This benchmark runs
the same matrix serially and through the multiprocessing pool and records
both wall-clock times (plus the speedup and the machine's CPU count, so a
number recorded on a one-core CI runner is not mistaken for a regression)
under ``extra_info["matrix"]`` in the benchmark JSON.

Default scope is the small queue catalog x {sc, tso, pso, relaxed}; set
``CHECKFENCE_LARGE=1`` to run every Table 1 implementation's small tests.
"""

import os

from repro.harness.matrix import catalog_cells, run_matrix
from repro.harness.runner import large_tests_enabled

PARALLEL_JOBS = 4
MODELS = ["sc", "tso", "pso", "relaxed"]


def _cells():
    implementations = ["msn"]
    if large_tests_enabled():
        implementations = ["ms2", "msn", "lazylist", "harris", "snark"]
    return catalog_cells(implementations, models=MODELS, size="small")


def test_matrix_parallel_speedup(run_once, benchmark):
    cells = _cells()
    serial = run_matrix(cells, jobs=1)
    parallel = run_once(run_matrix, cells, jobs=PARALLEL_JOBS)

    serial_verdicts = [(r.cell.key, r.verdict) for r in serial.results]
    parallel_verdicts = [(r.cell.key, r.verdict) for r in parallel.results]
    assert serial_verdicts == parallel_verdicts
    assert serial.ok and parallel.ok

    speedup = (
        serial.elapsed_seconds / parallel.elapsed_seconds
        if parallel.elapsed_seconds
        else 0.0
    )
    benchmark.extra_info["matrix"] = {
        "cells": len(cells),
        "shards": serial.shard_count,
        "models": MODELS,
        "jobs1_seconds": serial.elapsed_seconds,
        f"jobs{PARALLEL_JOBS}_seconds": parallel.elapsed_seconds,
        "jobs": PARALLEL_JOBS,
        "speedup": speedup,
        "cpu_count": os.cpu_count(),
        "cache_jobs1": serial.cache_totals(),
    }
