"""Encoding-size comparison: pruned vs dense memory-order construction.

For each catalog test this benchmark builds the formula twice — once with
the conflict-aware pruned order encoding (the default) and once with the
dense fallback (``dense_order=True``) — and records both sizes (CNF
variables/clauses, order variables, statically resolved pairs, transitivity
clauses) in the benchmark JSON under ``extra_info.order``.

Two gates ride along:

* on **every** catalog test the pruned construction must not emit more
  clauses than the dense one (the CI smoke step runs exactly this), and
* on the **two largest** Fig. 8 tests the pruned construction must emit at
  least 2x fewer clauses — the headline reduction cannot silently regress.

Only encoding runs here (no solving), so even the large tests are cheap
enough to keep in the default selection for the two-largest gate.
"""

import pytest

from repro.datatypes.registry import category_of, get_implementation
from repro.encoding import compile_test, encode_test
from repro.harness.catalog import get_test, test_names as catalog_test_names
from repro.harness.runner import large_tests_enabled
from repro.memorymodel.base import get_model

#: The two largest Fig. 8 catalog tests by number of memory accesses
#: (lazylist/Saaarr: 159 accesses, lazylist/S1: 139 accesses) — the pair the
#: >=2x clause-reduction acceptance gate is pinned to.
LARGEST = [("lazylist", "Saaarr"), ("lazylist", "S1")]


def _cases():
    sizes = ["small", "medium"]
    if large_tests_enabled():
        sizes.append("large")
    cases = []
    for implementation in ("msn", "ms2", "harris", "lazylist", "snark"):
        category = category_of(implementation)
        for size in sizes:
            for name in catalog_test_names(category, size):
                cases.append((implementation, name))
    return cases


def _encode_both(implementation_name: str, test_name: str, model_name: str):
    implementation = get_implementation(implementation_name)
    test = get_test(category_of(implementation_name), test_name)
    compiled = compile_test(implementation, test)
    model = get_model(model_name)
    pruned = encode_test(compiled, model, dense_order=False)
    dense = encode_test(compiled, model, dense_order=True)
    return pruned.stats, dense.stats


@pytest.mark.parametrize("implementation,test_name", _cases())
def test_pruned_never_larger_than_dense(
    benchmark, implementation, test_name
):
    """CI gate: the pruned encoding never emits more clauses (or order
    variables) than the dense one, on any catalog test."""
    pruned, dense = benchmark.pedantic(
        _encode_both, args=(implementation, test_name, "relaxed"),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["order"] = {
        "pruned": pruned.order_dict(),
        "dense": dense.order_dict(),
        "clause_ratio": dense.cnf_clauses / max(1, pruned.cnf_clauses),
    }
    assert pruned.cnf_clauses <= dense.cnf_clauses, (
        f"{implementation}/{test_name}: pruned emitted {pruned.cnf_clauses} "
        f"clauses, dense only {dense.cnf_clauses}"
    )
    assert pruned.order_vars <= dense.order_vars
    assert pruned.transitivity_clauses <= dense.transitivity_clauses
    assert pruned.cnf_variables <= dense.cnf_variables


@pytest.mark.parametrize("implementation,test_name", LARGEST)
def test_two_largest_emit_at_least_2x_fewer_clauses(
    benchmark, implementation, test_name
):
    """Acceptance gate: >=2x fewer CNF clauses on the two largest tests."""
    pruned, dense = benchmark.pedantic(
        _encode_both, args=(implementation, test_name, "relaxed"),
        rounds=1, iterations=1,
    )
    ratio = dense.cnf_clauses / max(1, pruned.cnf_clauses)
    benchmark.extra_info["order"] = {
        "pruned": pruned.order_dict(),
        "dense": dense.order_dict(),
        "clause_ratio": ratio,
    }
    assert ratio >= 2.0, (
        f"{implementation}/{test_name}: dense/pruned clause ratio dropped "
        f"to {ratio:.2f}x (dense {dense.cnf_clauses}, "
        f"pruned {pruned.cnf_clauses})"
    )


def test_serial_model_also_shrinks(benchmark):
    """The Seriality model (spec mining) keeps every cross-invocation pair
    live, so the reduction is smaller — but still strictly better."""
    pruned, dense = benchmark.pedantic(
        _encode_both, args=("msn", "T0", "serial"), rounds=1, iterations=1,
    )
    benchmark.extra_info["order"] = {
        "pruned": pruned.order_dict(),
        "dense": dense.order_dict(),
    }
    assert pruned.cnf_clauses < dense.cnf_clauses
