"""Section 4.2/4.3: missing fences and the typical failure modes.

For each implementation the experiment checks that

* the unfenced algorithm fails on the Relaxed model,
* the fenced version (Fig. 9 for msn) passes, and
* the unfenced version is correct under sequential consistency

— i.e. the algorithms are correct as published but *require* fences on
relaxed machines, which is the paper's central finding.  The counterexample
printed for ``msn`` shows the "incomplete initialization" failure of
Section 4.3.
"""

import pytest

from repro.core import check
from repro.datatypes import get_implementation
from repro.harness.catalog import get_test
from repro.harness.runner import fence_experiment

_CASES = [
    ("msn", "T0"),
    ("ms2", "T0"),
    ("harris", "Sac"),
    ("lazylist", "Sac"),
    ("snark", "D0"),
]


@pytest.mark.parametrize("implementation,test_name", _CASES)
def test_fences_required_on_relaxed(run_once, implementation, test_name, capsys):
    outcome = run_once(fence_experiment, implementation, test_name)
    assert outcome.reproduces_paper, (
        f"{implementation}: fenced_relaxed={outcome.fenced_passes_relaxed} "
        f"unfenced_fails={outcome.unfenced_fails_relaxed} "
        f"unfenced_sc={outcome.unfenced_passes_sc}"
    )
    with capsys.disabled():
        print(
            f"\nSection 4.2 {implementation}/{test_name}: unfenced fails on "
            f"Relaxed, fenced passes, unfenced passes on SC — as in the paper"
        )


def test_sec43_incomplete_initialization_counterexample(run_once, capsys):
    """The canonical Section 4.3 failure: the dequeuer observes node fields
    before the enqueuer's initializing stores are performed."""
    result = run_once(
        check, get_implementation("msn-unfenced"), get_test("queue", "T0"), "relaxed"
    )
    assert result.failed
    with capsys.disabled():
        print("\nSection 4.3 — incomplete initialization counterexample (msn):")
        print(result.counterexample.format())


def test_sec42_tso_needs_no_fences(run_once):
    """Section 4.2: only load-load and store-store fences were needed, so the
    algorithms work unchanged on architectures that keep those orders
    (e.g. SPARC TSO / IBM zSeries)."""
    result = run_once(
        check, get_implementation("msn-unfenced"), get_test("queue", "T0"), "tso"
    )
    assert result.passed
