"""Benchmark harness configuration.

Every benchmark exercises a full checker run (seconds, not microseconds), so
we run one round with one iteration each; pytest-benchmark still records the
wall-clock time, which is the number the paper's figures report.
"""

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under the benchmark timer."""

    def runner(function, *args, **kwargs):
        return benchmark.pedantic(
            function, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
