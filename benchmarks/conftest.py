"""Benchmark harness configuration.

Every benchmark exercises a full checker run (seconds, not microseconds), so
we run one round with one iteration each; pytest-benchmark still records the
wall-clock time, which is the number the paper's figures report.
"""

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under the benchmark timer."""

    def runner(function, *args, **kwargs):
        return benchmark.pedantic(
            function, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner


@pytest.fixture
def attach_solver_stats(benchmark):
    """Embed per-backend solver counters in the benchmark JSON
    (``--benchmark-json``), giving perf work a trajectory to compare
    against: decisions, conflicts, restarts, learned/deleted clauses.

    Accepts a dict (e.g. ``CheckStatistics.solver_dict()`` /
    ``InclusionRow.solver_dict()``) or a backend name plus a
    :class:`repro.sat.solver.SolverStats`.
    """

    def attach(stats, backend=None):
        if hasattr(stats, "as_dict"):
            payload = {"backend": backend or "", **stats.as_dict()}
        else:
            payload = dict(stats)
            if backend is not None:
                payload.setdefault("backend", backend)
        benchmark.extra_info["solver"] = payload

    return attach
