"""The reads-from engine against SAT mining and the operational enumerator.

Mining the full outcome set of a litmus test is where the polynomial
reads-from engine earns its keep: the SAT lane pays one solve/decode/block
round trip *per outcome* (plus the encoding itself), while the rf engine
decides each candidate reads-from assignment by incremental order closure —
no CNF, no solver.  This module times all three lanes on the same workload
and embeds them in the BENCH trend JSON under ``extra_info["rfcheck"]``:

* **rfcheck** — :func:`repro.rfcheck.rfcheck_outcomes`;
* **enumerator** — :func:`repro.oracle.enumerate_outcomes` (explicit-state);
* **sat** — :func:`repro.oracle.differ.mine_sat_outcomes` (solve/block).

Two workloads: the many-outcome headline (81 outcomes under relaxed, the
shape where per-outcome solver round trips hurt most) carries the >=2x
rfcheck-vs-SAT acceptance gate, and a litmus-catalog x 5-model sweep
records the aggregate picture.  Every lane must produce identical outcome
sets — a benchmark that drifts from the differential oracle is measuring
the wrong thing.
"""

import time

from repro.fuzz import FuzzProgram
from repro.litmus.catalog import available_litmus_tests, compiled_litmus
from repro.memorymodel.base import available_models
from repro.oracle import enumerate_outcomes
from repro.oracle.differ import mine_sat_outcomes
from repro.rfcheck import rfcheck_outcomes

#: Two threads of two stores + two loads each: 81 reachable outcomes under
#: relaxed, so SAT mining pays 82 solver calls where the rf engine walks
#: one candidate space.
HEADLINE_SPEC = "x=1 x=2 r0=y r1=y | y=1 y=2 r2=x r3=x"
HEADLINE_MODEL = "relaxed"

#: Per-lane repetitions on the headline: single runs are milliseconds, so
#: the gate is averaged to keep scheduler noise out of the 2x comparison.
ROUNDS = 20


def _lane(mine, rounds=ROUNDS):
    """Average wall-clock of ``mine()`` over ``rounds`` runs."""
    outcomes = mine()
    start = time.perf_counter()
    for _ in range(rounds):
        mine()
    return outcomes, (time.perf_counter() - start) / rounds


def test_many_outcome_headline(benchmark):
    """The acceptance gate: on a many-outcome test the rf engine mines the
    identical outcome set at least 2x faster than the SAT lane."""
    compiled = FuzzProgram.parse(HEADLINE_SPEC).compile()

    def run_lanes():
        rf, rf_seconds = _lane(
            lambda: rfcheck_outcomes(compiled, HEADLINE_MODEL).outcomes
        )
        enum, enum_seconds = _lane(
            lambda: enumerate_outcomes(compiled, HEADLINE_MODEL).outcomes
        )
        sat, sat_seconds = _lane(
            lambda: mine_sat_outcomes(compiled, HEADLINE_MODEL)
        )
        return (rf, rf_seconds), (enum, enum_seconds), (sat, sat_seconds)

    (rf, rf_seconds), (enum, enum_seconds), (sat, sat_seconds) = (
        benchmark.pedantic(run_lanes, rounds=1, iterations=1)
    )
    speedup = sat_seconds / rf_seconds if rf_seconds > 0 else float("inf")
    benchmark.extra_info["rfcheck"] = {
        "workload": "headline",
        "spec": HEADLINE_SPEC,
        "model": HEADLINE_MODEL,
        "outcomes": len(rf),
        "rounds": ROUNDS,
        "rfcheck_seconds": rf_seconds,
        "enumerator_seconds": enum_seconds,
        "sat_seconds": sat_seconds,
        "speedup_vs_sat": speedup,
    }
    assert rf == enum == sat
    assert speedup >= 2.0, (
        f"rf-engine mining was only {speedup:.1f}x faster than SAT "
        f"solve/block on {HEADLINE_SPEC!r} @ {HEADLINE_MODEL}"
    )


def test_litmus_catalog_sweep(benchmark):
    """Catalog x every memory model, once per lane: aggregate mining
    wall-clock with outcome-set identity asserted cell by cell."""
    compiled_tests = {
        name: compiled_litmus(litmus)
        for name, litmus in available_litmus_tests().items()
    }
    models = sorted(model.name for model in available_models())

    def run_sweep():
        totals = {"rfcheck": 0.0, "enumerator": 0.0, "sat": 0.0}
        for name, compiled in compiled_tests.items():
            for model in models:
                rf, seconds = _lane(
                    lambda: rfcheck_outcomes(compiled, model).outcomes,
                    rounds=1,
                )
                totals["rfcheck"] += seconds
                enum, seconds = _lane(
                    lambda: enumerate_outcomes(compiled, model).outcomes,
                    rounds=1,
                )
                totals["enumerator"] += seconds
                sat, seconds = _lane(
                    lambda: mine_sat_outcomes(compiled, model), rounds=1
                )
                totals["sat"] += seconds
                assert rf == enum == sat, f"{name} @ {model}"
        return totals

    totals = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    benchmark.extra_info["rfcheck"] = {
        "workload": "litmus-catalog",
        "tests": len(compiled_tests),
        "models": models,
        "cells": len(compiled_tests) * len(models),
        "rfcheck_seconds": totals["rfcheck"],
        "enumerator_seconds": totals["enumerator"],
        "sat_seconds": totals["sat"],
        "speedup_vs_sat": (
            totals["sat"] / totals["rfcheck"]
            if totals["rfcheck"] > 0 else float("inf")
        ),
    }
