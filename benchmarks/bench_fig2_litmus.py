"""Fig. 2 and Section 2.3.3: comparing the memory models on litmus tests.

The Fig. 2 execution (two readers disagreeing about the order of two
independent writes, despite load-load fences) is *not* possible on Relaxed
because Relaxed globally orders all stores; the classic store-buffering /
message-passing / load-buffering shapes separate Seriality, SC, TSO, PSO and
Relaxed from each other.
"""

import pytest

from repro.harness.reporting import format_table
from repro.litmus import (
    available_litmus_tests,
    iriw_allowed,
    observation_outcome,
)

_MODELS = ["sc", "tso", "pso", "relaxed"]

# Backend selection follows CHECKFENCE_SOLVER (the backend layer's own env
# fallback); set it to e.g. "dimacs" to attribute the numbers and the JSON
# solver counters to an external solver.

#: Expected verdicts (allowed?) per litmus test and model.
_EXPECTED = {
    "store-buffering": {"sc": False, "tso": True, "pso": True, "relaxed": True},
    "store-buffering+fences": {"sc": False, "tso": False, "pso": False,
                               "relaxed": False},
    "message-passing": {"sc": False, "tso": False, "pso": True, "relaxed": True},
    "message-passing+fences": {"sc": False, "tso": False, "pso": False,
                               "relaxed": False},
    "load-buffering": {"sc": False, "tso": False, "pso": False, "relaxed": True},
    "load-buffering+fences": {"sc": False, "tso": False, "pso": False,
                              "relaxed": False},
}

_RESULTS = []


@pytest.mark.parametrize("name", sorted(_EXPECTED))
@pytest.mark.parametrize("model", _MODELS)
def test_litmus_outcome(benchmark, attach_solver_stats, name, model):
    litmus = available_litmus_tests()[name]
    outcome = benchmark.pedantic(
        observation_outcome, args=(litmus, model), rounds=1, iterations=1
    )
    if outcome.solver_stats is not None:
        attach_solver_stats(outcome.solver_stats, backend=outcome.backend)
    if outcome.order is not None:
        benchmark.extra_info["order"] = outcome.order
    assert outcome.allowed == _EXPECTED[name][model], (
        f"{name} under {model}: got "
        f"{'allowed' if outcome.allowed else 'forbidden'}"
    )
    _RESULTS.append((name, model, outcome.allowed))


def test_fig2_iriw_forbidden_on_relaxed(run_once):
    assert run_once(iriw_allowed, "relaxed") is False


def test_report_litmus_matrix(capsys):
    assert _RESULTS
    names = sorted({name for name, _, _ in _RESULTS})
    rows = []
    for name in names:
        verdicts = {model: allowed for n, model, allowed in _RESULTS if n == name}
        rows.append(
            [name] + ["allowed" if verdicts.get(m) else "forbidden" for m in _MODELS]
        )
    with capsys.disabled():
        print("\nLitmus outcomes by memory model:\n")
        print(format_table(["test"] + _MODELS, rows))
