"""A/B: restart-per-solve vs persistent incremental external solving.

The paper's toolchain exported one DIMACS file per query and restarted
zChaff from scratch; the ``ipasir`` backends keep one external solver
alive across the whole solve/block mining loop, so learned clauses from
one query prune the next.  This module measures exactly that contrast on
the specification-mining workload (the heaviest enumeration loop in the
pipeline):

* **restart** — ``DimacsBackend`` over the in-tree DIMACS CLI: a fresh
  subprocess and a full clause-database re-export per solve;
* **persistent** — ``IncrementalPipeBackend``: the same in-tree solver
  behind one long-lived ``--incremental`` process (clauses shipped once,
  learned clauses preserved);
* **library** — ``IpasirBackend`` over a real IPASIR shared library,
  when one is installed (skipped otherwise).

Both lanes run the identical mining loop, so on the uncapped test the
observation sets must agree exactly — the verdict-identity gate of the
incremental path.  Results land in the BENCH trend JSON via
``extra_info``.

Not in the default ``bench_trend`` set (the restart lane is deliberately
slow); run via ``tools/bench_trend.py --benchmarks backend_incremental``
or directly with pytest.
"""

import os
import sys

import pytest

from repro.core.specification import SatSpecificationMiner
from repro.datatypes.registry import category_of, get_implementation
from repro.encoding import compile_test
from repro.harness.catalog import get_test
from repro.sat.backend import DimacsBackend
from repro.sat.ipasir import (
    IncrementalPipeBackend,
    IpasirBackend,
    find_ipasir_library,
)

_CLI_COMMAND = [sys.executable, "-m", "repro.sat.dimacs_cli"]

#: The A/B pair from the issue: a small queue test mined to completion
#: (verdict-identity asserted) and the largest catalog test capped to a
#: fixed number of solve/block iterations (per-solve timing only — a full
#: restart-per-solve mining run on a ~375k-clause formula is pointlessly
#: slow, which is rather the point of this benchmark).
FULL_TEST = ("msn", "Ti2")
CAPPED_TEST = ("lazylist", "Saaarr")
CAPPED_SOLVES = 6


@pytest.fixture(autouse=True)
def src_on_subprocess_path(monkeypatch):
    src = os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "src")
    )
    existing = os.environ.get("PYTHONPATH")
    monkeypatch.setenv(
        "PYTHONPATH", src + os.pathsep + existing if existing else src
    )


def _mine(compiled, factory, max_observations=100_000):
    miner = SatSpecificationMiner(
        compiled, max_observations=max_observations,
        backend_factory=factory,
    )
    return miner.mine()


def _compiled(implementation_name, test_name):
    implementation = get_implementation(implementation_name)
    test = get_test(category_of(implementation_name), test_name)
    return compile_test(implementation, test)


def test_restart_vs_persistent_full_mining(benchmark):
    """msn/Ti2 mined to completion under both lanes: identical
    observation sets, both wall-clocks recorded."""
    compiled = _compiled(*FULL_TEST)

    def run_both():
        restart = _mine(
            compiled, lambda: DimacsBackend(command=_CLI_COMMAND)
        )
        persistent = _mine(compiled, IncrementalPipeBackend)
        return restart, persistent

    restart, persistent = benchmark.pedantic(run_both, rounds=1, iterations=1)
    benchmark.extra_info["incremental_ab"] = {
        "test": "/".join(FULL_TEST),
        "observations": len(restart),
        "solves": restart.solver_iterations,
        "restart_seconds": restart.mining_seconds,
        "persistent_seconds": persistent.mining_seconds,
        "speedup": (
            restart.mining_seconds / persistent.mining_seconds
            if persistent.mining_seconds > 0 else None
        ),
    }
    assert restart.observations == persistent.observations
    assert restart.solver_iterations == persistent.solver_iterations


def test_restart_vs_persistent_capped_large(benchmark):
    """lazylist/Saaarr for a fixed number of solve/block iterations: the
    per-solve cost of re-export + cold start vs one warm solver."""
    compiled = _compiled(*CAPPED_TEST)

    def run_both():
        restart = _mine(
            compiled, lambda: DimacsBackend(command=_CLI_COMMAND),
            max_observations=CAPPED_SOLVES,
        )
        persistent = _mine(
            compiled, IncrementalPipeBackend,
            max_observations=CAPPED_SOLVES,
        )
        return restart, persistent

    restart, persistent = benchmark.pedantic(run_both, rounds=1, iterations=1)
    benchmark.extra_info["incremental_ab"] = {
        "test": "/".join(CAPPED_TEST),
        "capped_solves": CAPPED_SOLVES,
        "restart_seconds": restart.mining_seconds,
        "restart_seconds_per_solve": (
            restart.mining_seconds / restart.solver_iterations
        ),
        "persistent_seconds": persistent.mining_seconds,
        "persistent_seconds_per_solve": (
            persistent.mining_seconds / persistent.solver_iterations
        ),
    }
    assert restart.solver_iterations == persistent.solver_iterations


@pytest.mark.skipif(
    find_ipasir_library() is None,
    reason="no IPASIR shared library installed",
)
def test_ipasir_library_vs_restart(benchmark):
    """With a real IPASIR library (CI's cadical job): the acceptance gate
    of the issue — persistent library mining at least 2x faster than the
    restart-per-solve DIMACS path on the full msn/Ti2 loop, verdicts
    identical."""
    compiled = _compiled(*FULL_TEST)
    library = find_ipasir_library()

    def run_both():
        restart = _mine(
            compiled, lambda: DimacsBackend(command=_CLI_COMMAND)
        )
        incremental = _mine(compiled, lambda: IpasirBackend(library))
        return restart, incremental

    restart, incremental = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    speedup = (
        restart.mining_seconds / incremental.mining_seconds
        if incremental.mining_seconds > 0 else float("inf")
    )
    benchmark.extra_info["incremental_ab"] = {
        "test": "/".join(FULL_TEST),
        "library": library,
        "observations": len(restart),
        "restart_seconds": restart.mining_seconds,
        "ipasir_seconds": incremental.mining_seconds,
        "speedup": speedup,
    }
    assert restart.observations == incremental.observations
    assert speedup >= 2.0, (
        f"persistent IPASIR mining was only {speedup:.1f}x faster than "
        "restart-per-solve"
    )


@pytest.mark.skipif(
    find_ipasir_library() is None,
    reason="no IPASIR shared library installed",
)
def test_ipasir_library_vs_restart_capped_tpc6(benchmark):
    """The issue's headline workload, msn/Tpc6, capped to a fixed number
    of solve/block iterations (full restart-per-solve mining on it takes
    many minutes): persistent library solving must average at least 2x
    faster per solve, with identical per-iteration verdicts."""
    compiled = _compiled("msn", "Tpc6")
    library = find_ipasir_library()

    def run_both():
        restart = _mine(
            compiled, lambda: DimacsBackend(command=_CLI_COMMAND),
            max_observations=CAPPED_SOLVES,
        )
        incremental = _mine(
            compiled, lambda: IpasirBackend(library),
            max_observations=CAPPED_SOLVES,
        )
        return restart, incremental

    restart, incremental = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    speedup = (
        restart.mining_seconds / incremental.mining_seconds
        if incremental.mining_seconds > 0 else float("inf")
    )
    benchmark.extra_info["incremental_ab"] = {
        "test": "msn/Tpc6",
        "library": library,
        "capped_solves": CAPPED_SOLVES,
        "restart_seconds": restart.mining_seconds,
        "ipasir_seconds": incremental.mining_seconds,
        "speedup": speedup,
    }
    assert restart.solver_iterations == incremental.solver_iterations
    assert speedup >= 2.0, (
        f"persistent IPASIR mining was only {speedup:.1f}x faster than "
        "restart-per-solve on msn/Tpc6"
    )
