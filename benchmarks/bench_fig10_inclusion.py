"""Fig. 10: inclusion-check statistics.

For each (implementation, test) pair the paper reports the size of the
unrolled code, the encoding time, the CNF size, the SAT time, and the total
time, and plots time/memory against the number of memory accesses.  This
benchmark regenerates those rows for the small (and, with CHECKFENCE_LARGE=1,
the medium) catalog tests and prints the table plus the time-vs-accesses
scatter, whose steep growth is the "shape" of Fig. 10b.
"""

import pytest

# Aliased so pytest does not collect the helper as a test (it used to error
# out the module under a bare ``test_names`` import).
from repro.harness.catalog import test_names as catalog_test_names
from repro.harness.reporting import ascii_scatter, format_table
from repro.harness.runner import inclusion_row, large_tests_enabled

_ROWS = []

_CASES = [
    ("msn", [name for name in catalog_test_names("queue", "small")]),
    ("ms2", [name for name in catalog_test_names("queue", "small")]),
    ("harris", ["Sac", "Sar"]),
    ("lazylist", ["Sac"]),
    ("snark", ["D0"]),
]
if large_tests_enabled():
    _CASES += [
        ("msn", catalog_test_names("queue", "medium")),
        ("lazylist", ["Sacr", "Saacr"]),
        ("snark", ["Da", "Db"]),
    ]

_FLAT = [(impl, test) for impl, tests in _CASES for test in tests]


@pytest.mark.parametrize("implementation,test_name", _FLAT)
def test_inclusion_check_row(benchmark, attach_solver_stats, implementation, test_name):
    row = benchmark.pedantic(
        inclusion_row, args=(implementation, test_name, "relaxed"),
        rounds=1, iterations=1,
    )
    attach_solver_stats(row.solver_dict())
    benchmark.extra_info["order"] = row.order_dict()
    assert row.passed, f"{implementation}/{test_name} unexpectedly failed"
    assert row.cnf_clauses > 0
    _ROWS.append(row)


def test_zzz_report_fig10_table(capsys):
    """Aggregate the rows produced above into the Fig. 10 table and chart."""
    assert _ROWS, "inclusion rows should have been collected"
    headers = ["impl", "test", "instrs", "loads", "stores", "encode[s]",
               "vars", "clauses", "solve[s]", "total[s]"]
    rows = [
        (r.implementation, r.test, r.instructions, r.loads, r.stores,
         f"{r.encode_seconds:.2f}", r.cnf_variables, r.cnf_clauses,
         f"{r.solve_seconds:.2f}", f"{r.total_seconds:.2f}")
        for r in _ROWS
    ]
    points = [
        (r.loads + r.stores, max(r.total_seconds, 1e-3), r.implementation[0])
        for r in _ROWS
    ]
    with capsys.disabled():
        print("\nFig. 10 (a): inclusion check statistics\n")
        print(format_table(headers, rows))
        print("\nFig. 10 (b): total time vs. memory accesses (log-log)\n")
        print(ascii_scatter(points, x_label="memory accesses in unrolled code",
                            y_label="total check time [s]"))
