"""Fig. 12: observation-set method vs the commit-point style baseline.

The paper reports an average 2.61x speedup of the observation-set method
over the earlier commit-point method.  We compare against the lazy
validation baseline described in DESIGN.md on the small catalog tests, and
check that the two methods agree on every verdict.
"""

import pytest

from repro.harness.reporting import format_table
from repro.harness.runner import method_comparison

_CASES = [
    ("msn", "T0"),
    ("ms2", "T0"),
    ("harris", "Sac"),
    ("msn-unfenced", "T0"),
]

_RESULTS = []


@pytest.mark.parametrize("implementation,test_name", _CASES)
def test_fig12_method_comparison(benchmark, implementation, test_name):
    comparison = benchmark.pedantic(
        method_comparison, args=(implementation, test_name, "relaxed"),
        rounds=1, iterations=1,
    )
    assert comparison.both_agree
    _RESULTS.append(comparison)


def test_fig12_report(capsys):
    assert _RESULTS
    headers = ["impl", "test", "observation-set[s]", "commit-point[s]", "ratio"]
    rows = [
        (c.implementation, c.test, f"{c.observation_set_seconds:.2f}",
         f"{c.commit_point_seconds:.2f}", f"{c.speedup:.2f}x")
        for c in _RESULTS
    ]
    with capsys.disabled():
        print("\nFig. 12: method comparison (ratio > 1 means the observation-"
              "set method is faster)\n")
        print(format_table(headers, rows))
