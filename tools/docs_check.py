"""Documentation checks: markdown link integrity and tutorial smoke runs.

Two modes, combinable (the CI docs job runs both):

* ``--links`` — every inline markdown link in the repo's ``*.md`` files
  that points inside the repo must resolve to an existing file or
  directory (fragments are stripped; external ``http(s)``/``mailto``
  links and pure-anchor links are skipped).
* ``--tutorial`` — executes the fenced ``sh`` and ``python`` code blocks
  of ``docs/tutorial.md`` as a smoke test.  In ``sh`` blocks each line is
  one command; a leading ``checkfence`` is translated to ``python -m
  repro.cli`` with ``PYTHONPATH=src``, and a trailing ``# exit: N``
  comment declares the expected exit code (default 0).  ``python`` blocks
  run whole, also against the in-tree package.

Exits nonzero, listing every failure, when anything is broken.  Run from
anywhere; paths resolve relative to the repo root (the parent of this
file's directory).
"""

from __future__ import annotations

import argparse
import os
import re
import shlex
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Inline markdown links: [text](target).  Good enough for this repo's
#: docs; reference-style links are not used.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE_RE = re.compile(r"^```(\w*)\s*$")
_EXIT_RE = re.compile(r"^(?P<cmd>.*?)(?:\s*#\s*exit:\s*(?P<code>\d+))?\s*$")

#: Directories never scanned for markdown files.
_SKIP_DIRS = {".git", ".claude", ".pytest_cache", ".hypothesis", ".benchmarks",
              "__pycache__", "node_modules"}


def markdown_files() -> list[str]:
    found = []
    for dirpath, dirnames, filenames in os.walk(REPO_ROOT):
        dirnames[:] = [d for d in dirnames if d not in _SKIP_DIRS]
        for filename in filenames:
            if filename.endswith(".md"):
                found.append(os.path.join(dirpath, filename))
    return sorted(found)


def check_links() -> list[str]:
    """Return a list of "file: broken target" problem strings."""
    problems = []
    for path in markdown_files():
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        for target in _LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target.split("#", 1)[0])
            )
            if not os.path.exists(resolved):
                rel = os.path.relpath(path, REPO_ROOT)
                problems.append(f"{rel}: broken link -> {target}")
    return problems


def tutorial_commands(path: str | None = None) -> list[tuple[str, list[str], int]]:
    """Extract ``(kind, command, expected_exit)`` tuples from the tutorial's
    fenced ``sh``/``python`` blocks.  ``command`` is an argv list."""
    if path is None:
        path = os.path.join(REPO_ROOT, "docs", "tutorial.md")
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    commands: list[tuple[str, list[str], int]] = []
    language = None
    block: list[str] = []
    for line in lines:
        fence = _FENCE_RE.match(line)
        if fence is None:
            if language is not None:
                block.append(line)
            continue
        if language is None:
            language = fence.group(1)
            block = []
            continue
        # Closing fence: flush the block.
        if language == "sh":
            for raw in block:
                raw = raw.strip()
                if not raw or raw.startswith("#"):
                    continue
                match = _EXIT_RE.match(raw)
                command, code = match.group("cmd"), match.group("code")
                if command.startswith("checkfence"):
                    command = command.replace(
                        "checkfence",
                        f"{sys.executable} -m repro.cli",
                        1,
                    )
                commands.append(
                    ("sh", shlex.split(command), int(code) if code else 0)
                )
        elif language == "python":
            commands.append(("python", [sys.executable, "-c", "\n".join(block)], 0))
        language = None
    return commands


def run_tutorial() -> list[str]:
    """Run every tutorial command; return problem strings."""
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    problems = []
    commands = tutorial_commands()
    if not commands:
        return ["docs/tutorial.md: no runnable code blocks found"]
    for kind, argv, expected in commands:
        shown = " ".join(argv[:6]) + (" ..." if len(argv) > 6 else "")
        print(f"[tutorial:{kind}] {shown}", flush=True)
        proc = subprocess.run(
            argv, cwd=REPO_ROOT, env=env, capture_output=True, text=True
        )
        if proc.returncode != expected:
            problems.append(
                f"tutorial command {shown!r} exited {proc.returncode} "
                f"(expected {expected}):\n{proc.stderr.strip()[-2000:]}"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--links", action="store_true",
                        help="check intra-repo markdown links resolve")
    parser.add_argument("--tutorial", action="store_true",
                        help="run docs/tutorial.md code blocks as a smoke test")
    args = parser.parse_args(argv)
    if not (args.links or args.tutorial):
        parser.error("nothing to do: pass --links and/or --tutorial")
    problems = []
    if args.links:
        problems += check_links()
    if args.tutorial:
        problems += run_tutorial()
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if not problems:
        print("docs checks passed")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
