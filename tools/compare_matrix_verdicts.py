#!/usr/bin/env python3
"""Assert two ``checkfence matrix --json`` outputs are verdict-identical.

CI runs the small-catalog matrix once per solver backend (and once cold /
once warm against the persistent store) and feeds both JSON files here;
any per-cell verdict difference (or a cell present in one run only)
fails with a readable diff.  Timing and counters are ignored — only
(implementation, test, model) -> verdict matters.

Degraded verdicts (TIMEOUT, OOM, CRASHED) are *incomparable*, not
divergent: they mean a run hit a resource budget or lost a worker before
producing an answer, so a cell that is TIMEOUT on one side carries no
evidence about the other side's PASS/FAIL.  Such cells are skipped and
counted (the summary reports how many were not compared); they never
fail the comparison.  ERROR stays strict — a harness error is a real
difference worth failing on.

With ``--min-store-hit-rate`` the candidate run must additionally have
served at least that fraction of its store lookups from the persistent
cache (``store_hits / (store_hits + store_misses)`` over the matrix
``cache`` totals) — the warm-rerun acceptance gate.

Usage::

    python tools/compare_matrix_verdicts.py baseline.json candidate.json
    python tools/compare_matrix_verdicts.py cold.json warm.json \\
        --min-store-hit-rate 0.9
"""

from __future__ import annotations

import argparse
import json
import sys

#: Verdicts that mean "no answer was produced" (resource budget or lost
#: worker); cells carrying one on either side are skipped, not diffed.
INCOMPARABLE = frozenset({"TIMEOUT", "OOM", "CRASHED"})


def _load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _verdicts(payload: dict) -> dict[tuple[str, str, str], str]:
    out: dict[tuple[str, str, str], str] = {}
    for cell in payload.get("cells", []):
        key = (cell["implementation"], cell["test"], cell["model"])
        out[key] = cell["verdict"]
    return out


def _store_hit_rate(payload: dict) -> tuple[float, int, int]:
    cache = payload.get("cache", {})
    hits = int(cache.get("store_hits", 0))
    misses = int(cache.get("store_misses", 0))
    lookups = hits + misses
    return (hits / lookups if lookups else 0.0), hits, misses


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="assert two matrix --json outputs are verdict-identical",
    )
    parser.add_argument("baseline", help="baseline matrix JSON")
    parser.add_argument("candidate", help="candidate matrix JSON")
    parser.add_argument(
        "--min-store-hit-rate", type=float, default=None, metavar="RATE",
        help="additionally require the candidate's persistent-store hit "
        "rate (store_hits / lookups) to be at least RATE (e.g. 0.9)",
    )
    args = parser.parse_args(argv)

    baseline_payload = _load(args.baseline)
    candidate_payload = _load(args.candidate)
    baseline = _verdicts(baseline_payload)
    candidate = _verdicts(candidate_payload)
    if not baseline:
        print(f"no cells in {args.baseline}", file=sys.stderr)
        return 1
    problems = []
    incomparable = []
    for key in sorted(set(baseline) | set(candidate)):
        left = baseline.get(key)
        right = candidate.get(key)
        if left in INCOMPARABLE or right in INCOMPARABLE:
            incomparable.append(
                f"  {'/'.join(key)}: {left or 'missing'} vs "
                f"{right or 'missing'} (not compared)"
            )
            continue
        if left != right:
            name = "/".join(key)
            problems.append(
                f"  {name}: {left or 'missing'} vs {right or 'missing'}"
            )
    if problems:
        print(
            f"verdict mismatch between {args.baseline} and {args.candidate}:\n"
            + "\n".join(problems)
        )
        return 1
    compared = len(set(baseline) | set(candidate)) - len(incomparable)
    print(
        f"{compared} cells verdict-identical "
        f"({args.baseline} vs {args.candidate})"
    )
    if incomparable:
        # Degraded cells are skipped, never silently: say what was not
        # compared so a budget-starved CI run reads as incomplete.
        print(f"{len(incomparable)} cells not comparable "
              "(TIMEOUT/OOM/CRASHED on at least one side):")
        print("\n".join(incomparable))
    if args.min_store_hit_rate is not None:
        rate, hits, misses = _store_hit_rate(candidate_payload)
        print(
            f"candidate store hit rate: {rate:.1%} "
            f"({hits} hits, {misses} misses)"
        )
        if rate < args.min_store_hit_rate:
            print(
                f"store hit rate {rate:.1%} below the required "
                f"{args.min_store_hit_rate:.1%}",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
