#!/usr/bin/env python3
"""Assert two ``checkfence matrix --json`` outputs are verdict-identical.

CI runs the small-catalog matrix once per solver backend and feeds both
JSON files here; any per-cell verdict difference (or a cell present in
one run only) fails with a readable diff.  Timing and counters are
ignored — only (implementation, test, model) -> verdict matters.

Usage::

    python tools/compare_matrix_verdicts.py baseline.json candidate.json
"""

from __future__ import annotations

import json
import sys


def _verdicts(path: str) -> dict[tuple[str, str, str], str]:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    out: dict[tuple[str, str, str], str] = {}
    for cell in payload.get("cells", []):
        key = (cell["implementation"], cell["test"], cell["model"])
        out[key] = cell["verdict"]
    return out


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 2:
        print(
            "usage: python tools/compare_matrix_verdicts.py "
            "BASELINE.json CANDIDATE.json",
            file=sys.stderr,
        )
        return 2
    baseline = _verdicts(argv[0])
    candidate = _verdicts(argv[1])
    if not baseline:
        print(f"no cells in {argv[0]}", file=sys.stderr)
        return 1
    problems = []
    for key in sorted(set(baseline) | set(candidate)):
        left = baseline.get(key)
        right = candidate.get(key)
        if left != right:
            name = "/".join(key)
            problems.append(f"  {name}: {left or 'missing'} vs {right or 'missing'}")
    if problems:
        print(
            f"verdict mismatch between {argv[0]} and {argv[1]}:\n"
            + "\n".join(problems)
        )
        return 1
    print(
        f"{len(baseline)} cells verdict-identical "
        f"({argv[0]} vs {argv[1]})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
