#!/usr/bin/env python3
"""Run the benchmark suite and append one consolidated trend snapshot.

Each invocation runs a selection of ``benchmarks/bench_*.py`` modules under
pytest-benchmark, gathers every per-test record (wall-clock seconds plus the
embedded ``extra_info`` blocks: solver counters, memory-order encoding
counters, matrix scaling records), and writes a single consolidated
``BENCH_<n>.json`` at the repository root — ``<n>`` is one past the highest
existing snapshot, so the repo accumulates a perf trajectory that future
PRs can diff against (CI uploads the file as an artifact).

``--compare`` mode diffs the two newest snapshots instead of running
anything: a per-benchmark wall-clock delta table, exiting non-zero when
any benchmark present in both snapshots regressed by more than 25%
(relative) *and* 0.1s (absolute — so micro-benchmarks are not failed on
scheduler noise), plus a report-only diff of the solver-stat counters
(propagations, conflicts, preprocess_seconds) — deterministic numbers
that expose kernel regressions even when 1-core CI timing is too noisy
to gate on.  CI runs the comparison after every snapshot so the perf
trajectory is a gate, not just an artifact.

Usage::

    python tools/bench_trend.py                  # the default (fast) set
    python tools/bench_trend.py --all            # every bench_*.py module
    python tools/bench_trend.py --benchmarks fig2_litmus,encoding_size
    python tools/bench_trend.py --dry-run        # list what would run
    python tools/bench_trend.py --compare        # newest vs previous
    python tools/bench_trend.py --compare --against BENCH_1.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"

#: Modules run by default: the paper's headline figures plus the encoding
#: size gate — each finishes in seconds-to-a-couple-minutes.  The slower
#: experiment sweeps (fig8 catalog, sec4x, matrix scaling) are opt-in via
#: --all or --benchmarks.
DEFAULT_SET = [
    "fig2_litmus",
    "fig10_inclusion",
    "encoding_size",
    "encode_share",
    "fuzz_throughput",
    "simplify",
    "rfcheck",
]

#: --compare regression gate: fail when a benchmark got more than 25%
#: slower AND the absolute growth exceeds 0.1s (micro-modules jitter).
REGRESSION_RELATIVE = 0.25
REGRESSION_ABSOLUTE = 0.1


def available_benchmarks() -> list[str]:
    return sorted(
        path.stem[len("bench_"):]
        for path in BENCH_DIR.glob("bench_*.py")
    )


def snapshot_paths() -> list[Path]:
    """Existing BENCH_<n>.json snapshots, oldest first."""
    numbered = []
    for path in REPO_ROOT.glob("BENCH_*.json"):
        match = re.fullmatch(r"BENCH_(\d+)\.json", path.name)
        if match:
            numbered.append((int(match.group(1)), path))
    return [path for _, path in sorted(numbered)]


def next_snapshot_path() -> Path:
    paths = snapshot_paths()
    if not paths:
        return REPO_ROOT / "BENCH_1.json"
    highest = int(re.fullmatch(r"BENCH_(\d+)\.json", paths[-1].name).group(1))
    return REPO_ROOT / f"BENCH_{highest + 1}.json"


def _benchmark_seconds(snapshot: dict) -> dict[str, float]:
    """Per-benchmark wall-clock totals of one snapshot (only benchmarks
    that ran to completion contribute)."""
    seconds = {}
    for record in snapshot.get("benchmarks", []):
        if record.get("status") == "ok" and "total_seconds" in record:
            seconds[record["benchmark"]] = record["total_seconds"]
    return seconds


#: Solver-stat counters diffed by --compare (report-only, no gate): they
#: are deterministic per build, so kernel/encoding regressions show up in
#: them even when wall-clock numbers drown in 1-core CI scheduler noise.
COUNTER_KEYS = ("propagations", "conflicts", "preprocess_seconds")


def _benchmark_counters(snapshot: dict) -> dict[str, dict[str, float]]:
    """Per-benchmark solver-counter totals, summed over the benchmark's
    tests.  Counters live in each test's ``extra_info.solver`` block
    (``preprocess_seconds`` also in ``extra_info.simplify``); benchmarks
    recording neither contribute nothing."""
    totals: dict[str, dict[str, float]] = {}
    for record in snapshot.get("benchmarks", []):
        if record.get("status") != "ok":
            continue
        sums: dict[str, float] = {}
        for test in record.get("tests", []):
            extra = test.get("extra_info", {})
            for block_name in ("solver", "simplify"):
                block = extra.get(block_name)
                if not isinstance(block, dict):
                    continue
                for key in COUNTER_KEYS:
                    value = block.get(key)
                    if isinstance(value, (int, float)):
                        sums[key] = sums.get(key, 0) + value
        if sums:
            totals[record["benchmark"]] = sums
    return totals


def _print_counter_diff(new: dict, old: dict) -> None:
    """The report-only counter table of --compare."""
    new_counters = _benchmark_counters(new)
    old_counters = _benchmark_counters(old)
    shared = sorted(set(new_counters) & set(old_counters))
    rows = []
    for name in shared:
        for key in COUNTER_KEYS:
            old_value = old_counters[name].get(key)
            new_value = new_counters[name].get(key)
            if old_value is None or new_value is None:
                continue
            rows.append((f"{name}.{key}", old_value, new_value))
    if not rows:
        print("bench_trend: no shared solver counters to diff")
        return
    width = max(len(label) for label, _, _ in rows)
    print("solver counters (report-only, not gated):")
    print(f"{'counter':<{width}}  {'old':>12}  {'new':>12}  {'delta':>8}")
    for label, old_value, new_value in rows:
        if old_value > 0:
            relative = f"{(new_value - old_value) / old_value:+7.0%}"
        else:
            relative = "-" if new_value == old_value else "new"
        if label.endswith("seconds"):
            old_text, new_text = f"{old_value:.2f}", f"{new_value:.2f}"
        else:
            old_text, new_text = f"{old_value:.0f}", f"{new_value:.0f}"
        print(f"{label:<{width}}  {old_text:>12}  {new_text:>12}  "
              f"{relative:>8}")


def compare_snapshots(new_path: Path, old_path: Path) -> int:
    """Print a per-benchmark wall-clock delta table plus a report-only
    solver-counter diff; return a non-zero exit code when any shared
    benchmark regressed past the wall-clock gate."""
    new = json.loads(new_path.read_text(encoding="utf-8"))
    old = json.loads(old_path.read_text(encoding="utf-8"))
    new_seconds = _benchmark_seconds(new)
    old_seconds = _benchmark_seconds(old)
    names = sorted(set(new_seconds) | set(old_seconds))
    width = max((len(name) for name in names), default=9)
    print(f"bench_trend: {new_path.name} vs {old_path.name}")
    print(f"{'benchmark':<{width}}  {'old[s]':>8}  {'new[s]':>8}  "
          f"{'delta':>8}  status")
    regressions = []
    for name in names:
        old_value = old_seconds.get(name)
        new_value = new_seconds.get(name)
        if old_value is None:
            print(f"{name:<{width}}  {'-':>8}  {new_value:>8.2f}  "
                  f"{'-':>8}  new (no baseline)")
            continue
        if new_value is None:
            print(f"{name:<{width}}  {old_value:>8.2f}  {'-':>8}  "
                  f"{'-':>8}  missing from newest")
            continue
        delta = new_value - old_value
        relative = delta / old_value if old_value > 0 else 0.0
        regressed = (
            relative > REGRESSION_RELATIVE and delta > REGRESSION_ABSOLUTE
        )
        status = "REGRESSION" if regressed else "ok"
        if regressed:
            regressions.append(name)
        print(f"{name:<{width}}  {old_value:>8.2f}  {new_value:>8.2f}  "
              f"{relative:>+7.0%}  {status}")
    _print_counter_diff(new, old)
    if regressions:
        print(
            f"bench_trend: {len(regressions)} wall-clock regression(s) "
            f"past {REGRESSION_RELATIVE:.0%}/{REGRESSION_ABSOLUTE}s: "
            + ", ".join(regressions)
        )
        return 1
    print("bench_trend: no wall-clock regressions past the gate")
    return 0


def run_benchmark(name: str, timeout: float | None) -> dict:
    """Run one benchmark module; returns its consolidated record."""
    module = BENCH_DIR / f"bench_{name}.py"
    with tempfile.NamedTemporaryFile(
        suffix=".json", prefix=f"bench-{name}-", delete=False
    ) as handle:
        json_path = Path(handle.name)
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    command = [
        sys.executable, "-m", "pytest", str(module), "-q",
        f"--benchmark-json={json_path}",
    ]
    try:
        completed = subprocess.run(
            command, cwd=REPO_ROOT, env=env, timeout=timeout,
            capture_output=True, text=True,
        )
        status = "ok" if completed.returncode == 0 else "failed"
        tail = "\n".join(completed.stdout.splitlines()[-5:])
    except subprocess.TimeoutExpired:
        status, tail = "timeout", ""
    record: dict = {"benchmark": name, "status": status, "pytest_tail": tail}
    try:
        payload = json.loads(json_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        payload = None
    finally:
        try:
            json_path.unlink()
        except OSError:
            pass
    if payload is not None:
        tests = []
        total = 0.0
        for bench in payload.get("benchmarks", []):
            seconds = bench.get("stats", {}).get("mean", 0.0)
            total += seconds
            tests.append({
                "name": bench.get("name"),
                "seconds": seconds,
                "extra_info": bench.get("extra_info", {}),
            })
        record["tests"] = tests
        record["total_seconds"] = total
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="run benchmarks and write a consolidated BENCH_<n>.json "
        "trend snapshot at the repo root"
    )
    parser.add_argument(
        "--benchmarks", default=None, metavar="NAMES",
        help="comma-separated module keys (bench_<key>.py); "
        f"default: {','.join(DEFAULT_SET)}",
    )
    parser.add_argument("--all", action="store_true",
                        help="run every bench_*.py module")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="per-module timeout in seconds (default: 600)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the snapshot here instead of the next "
                        "BENCH_<n>.json")
    parser.add_argument("--dry-run", action="store_true",
                        help="list the modules that would run and exit")
    parser.add_argument(
        "--compare", action="store_true",
        help="do not run anything: diff the newest snapshot against the "
        "previous one (or --against) and exit non-zero on wall-clock "
        "regressions past the gate",
    )
    parser.add_argument(
        "--snapshot", default=None, metavar="FILE",
        help="with --compare: the newer snapshot (default: newest "
        "BENCH_<n>.json)",
    )
    parser.add_argument(
        "--against", default=None, metavar="FILE",
        help="with --compare: the baseline snapshot (default: the "
        "second-newest BENCH_<n>.json)",
    )
    args = parser.parse_args(argv)

    if args.compare:
        paths = snapshot_paths()
        new_path = Path(args.snapshot) if args.snapshot else (
            paths[-1] if paths else None
        )
        old_path = Path(args.against) if args.against else (
            paths[-2] if len(paths) >= 2 else None
        )
        if new_path is None or old_path is None:
            parser.error(
                "--compare needs two snapshots (found "
                f"{len(paths)} BENCH_<n>.json at the repo root)"
            )
        return compare_snapshots(new_path, old_path)

    known = available_benchmarks()
    if args.all:
        selection = known
    elif args.benchmarks:
        selection = [n.strip() for n in args.benchmarks.split(",") if n.strip()]
        unknown = [n for n in selection if n not in known]
        if unknown:
            parser.error(
                f"unknown benchmarks {', '.join(unknown)} "
                f"(known: {', '.join(known)})"
            )
    else:
        selection = [n for n in DEFAULT_SET if n in known]

    if args.dry_run:
        for name in selection:
            print(f"bench_{name}.py")
        return 0

    records = []
    for name in selection:
        print(f"bench_trend: running bench_{name}.py ...", flush=True)
        record = run_benchmark(name, timeout=args.timeout)
        wall = record.get("total_seconds")
        suffix = f" ({wall:.2f}s measured)" if wall is not None else ""
        print(f"bench_trend: bench_{name}.py {record['status']}{suffix}",
              flush=True)
        records.append(record)

    snapshot = {
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "environment": {
            key: os.environ.get(key, "")
            for key in ("CHECKFENCE_SOLVER", "CHECKFENCE_DENSE_ORDER",
                        "CHECKFENCE_SIMPLIFY",
                        "CHECKFENCE_SIMPLIFY_MIN_CLAUSES",
                        "CHECKFENCE_SHARE_ENCODE", "CHECKFENCE_STORE",
                        "CHECKFENCE_JOBS", "CHECKFENCE_LARGE")
        },
        "benchmarks": records,
    }
    out_path = Path(args.out) if args.out else next_snapshot_path()
    out_path.write_text(
        json.dumps(snapshot, indent=2, default=str) + "\n", encoding="utf-8"
    )
    print(f"bench_trend: wrote {out_path}")
    return 0 if all(r["status"] == "ok" for r in records) else 1


if __name__ == "__main__":
    sys.exit(main())
