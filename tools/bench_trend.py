#!/usr/bin/env python3
"""Run the benchmark suite and append one consolidated trend snapshot.

Each invocation runs a selection of ``benchmarks/bench_*.py`` modules under
pytest-benchmark, gathers every per-test record (wall-clock seconds plus the
embedded ``extra_info`` blocks: solver counters, memory-order encoding
counters, matrix scaling records), and writes a single consolidated
``BENCH_<n>.json`` at the repository root — ``<n>`` is one past the highest
existing snapshot, so the repo accumulates a perf trajectory that future
PRs can diff against (CI uploads the file as an artifact).

Usage::

    python tools/bench_trend.py                  # the default (fast) set
    python tools/bench_trend.py --all            # every bench_*.py module
    python tools/bench_trend.py --benchmarks fig2_litmus,encoding_size
    python tools/bench_trend.py --dry-run        # list what would run
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"

#: Modules run by default: the paper's headline figures plus the encoding
#: size gate — each finishes in seconds-to-a-couple-minutes.  The slower
#: experiment sweeps (fig8 catalog, sec4x, matrix scaling) are opt-in via
#: --all or --benchmarks.
DEFAULT_SET = [
    "fig2_litmus",
    "fig10_inclusion",
    "encoding_size",
    "fuzz_throughput",
]


def available_benchmarks() -> list[str]:
    return sorted(
        path.stem[len("bench_"):]
        for path in BENCH_DIR.glob("bench_*.py")
    )


def next_snapshot_path() -> Path:
    highest = 0
    for path in REPO_ROOT.glob("BENCH_*.json"):
        match = re.fullmatch(r"BENCH_(\d+)\.json", path.name)
        if match:
            highest = max(highest, int(match.group(1)))
    return REPO_ROOT / f"BENCH_{highest + 1}.json"


def run_benchmark(name: str, timeout: float | None) -> dict:
    """Run one benchmark module; returns its consolidated record."""
    module = BENCH_DIR / f"bench_{name}.py"
    with tempfile.NamedTemporaryFile(
        suffix=".json", prefix=f"bench-{name}-", delete=False
    ) as handle:
        json_path = Path(handle.name)
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    command = [
        sys.executable, "-m", "pytest", str(module), "-q",
        f"--benchmark-json={json_path}",
    ]
    try:
        completed = subprocess.run(
            command, cwd=REPO_ROOT, env=env, timeout=timeout,
            capture_output=True, text=True,
        )
        status = "ok" if completed.returncode == 0 else "failed"
        tail = "\n".join(completed.stdout.splitlines()[-5:])
    except subprocess.TimeoutExpired:
        status, tail = "timeout", ""
    record: dict = {"benchmark": name, "status": status, "pytest_tail": tail}
    try:
        payload = json.loads(json_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        payload = None
    finally:
        try:
            json_path.unlink()
        except OSError:
            pass
    if payload is not None:
        tests = []
        total = 0.0
        for bench in payload.get("benchmarks", []):
            seconds = bench.get("stats", {}).get("mean", 0.0)
            total += seconds
            tests.append({
                "name": bench.get("name"),
                "seconds": seconds,
                "extra_info": bench.get("extra_info", {}),
            })
        record["tests"] = tests
        record["total_seconds"] = total
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="run benchmarks and write a consolidated BENCH_<n>.json "
        "trend snapshot at the repo root"
    )
    parser.add_argument(
        "--benchmarks", default=None, metavar="NAMES",
        help="comma-separated module keys (bench_<key>.py); "
        f"default: {','.join(DEFAULT_SET)}",
    )
    parser.add_argument("--all", action="store_true",
                        help="run every bench_*.py module")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="per-module timeout in seconds (default: 600)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the snapshot here instead of the next "
                        "BENCH_<n>.json")
    parser.add_argument("--dry-run", action="store_true",
                        help="list the modules that would run and exit")
    args = parser.parse_args(argv)

    known = available_benchmarks()
    if args.all:
        selection = known
    elif args.benchmarks:
        selection = [n.strip() for n in args.benchmarks.split(",") if n.strip()]
        unknown = [n for n in selection if n not in known]
        if unknown:
            parser.error(
                f"unknown benchmarks {', '.join(unknown)} "
                f"(known: {', '.join(known)})"
            )
    else:
        selection = [n for n in DEFAULT_SET if n in known]

    if args.dry_run:
        for name in selection:
            print(f"bench_{name}.py")
        return 0

    records = []
    for name in selection:
        print(f"bench_trend: running bench_{name}.py ...", flush=True)
        record = run_benchmark(name, timeout=args.timeout)
        wall = record.get("total_seconds")
        suffix = f" ({wall:.2f}s measured)" if wall is not None else ""
        print(f"bench_trend: bench_{name}.py {record['status']}{suffix}",
              flush=True)
        records.append(record)

    snapshot = {
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "environment": {
            key: os.environ.get(key, "")
            for key in ("CHECKFENCE_SOLVER", "CHECKFENCE_DENSE_ORDER",
                        "CHECKFENCE_JOBS", "CHECKFENCE_LARGE")
        },
        "benchmarks": records,
    }
    out_path = Path(args.out) if args.out else next_snapshot_path()
    out_path.write_text(
        json.dumps(snapshot, indent=2, default=str) + "\n", encoding="utf-8"
    )
    print(f"bench_trend: wrote {out_path}")
    return 0 if all(r["status"] == "ok" for r in records) else 1


if __name__ == "__main__":
    sys.exit(main())
